package walk

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/rebalance"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Coordinator instrumentation, resolved once at init. Query latency is
// end to end (launch to retire, queueing included); the credit-stall
// histogram captures each individual router stall, with stalls of at
// least a millisecond also journaled — the ring would drown in entries
// if every microsecond wait were recorded.
var (
	coordQueryNs       = obs.H("bingo_query_seconds", "svc", "coord")
	coordDeepwalkNs    = obs.H("bingo_deepwalk_seconds")
	coordBarrierNs     = obs.H("bingo_barrier_seconds")
	coordIngestBatches = obs.C("bingo_ingest_batches_total", "svc", "coord")
	coordIngestUpdates = obs.C("bingo_ingest_updates_total", "svc", "coord")
	coordCreditStallNs = obs.H("bingo_credit_stall_seconds")
	coordBroadcasts    = obs.C("bingo_broadcasts_total")
	coordMigrations    = obs.C("bingo_migrations_total")
)

// journalStallMin is the credit-stall duration below which a stall is
// counted in the histogram but not journaled.
const journalStallMin = time.Millisecond

// coordSeq distinguishes coordinator sessions in the exporter registry
// (a process can host several, e.g. tests or the in-process demo).
var coordSeq atomic.Uint64

// ErrFabricDown is returned by coordinator-side calls whose shard fabric
// session ended before the reply arrived (a daemon died or the transport
// failed). The fabric admits one *write* session at a time plus any
// number of attached read-coordinators; losing the write session ends
// the service — and every reader's event stream with it.
var ErrFabricDown = errors.New("walk: shard fabric session ended")

// coordinator is the front half of a sharded serving runtime over any
// shard fabric: it launches walkers (queries and bulk runs), routes feed
// batches by owner shard, pushes sync barriers, and consumes the event
// stream (retires and acks) to complete them. ShardedLiveService runs it
// over the in-process fabric; RemoteService runs the identical logic over
// a wire fabric — the coordinator cannot tell the difference, which is
// the point of the extraction.
type coordinator struct {
	port fabric.CoordPort
	// plan is the construction-time geometry (Shards and RangeSize never
	// change); planv is the live ownership plan the rebalancer's
	// committed migrations re-point. Routing, walker launches, and the
	// rebalancer all resolve owners through planNow.
	plan  ShardPlan
	planv atomic.Pointer[ShardPlan]
	cfg   ShardedLiveConfig

	feed   chan coordMsg
	master *xrand.RNG // Split-only after construction (reads, no state advance)
	idSeq  atomic.Uint64
	barSeq atomic.Uint64

	// ledger is the per-shard routed-update count (written only by the
	// router goroutine; ledMu guards the writes because broadcastNow
	// snapshots the vector from other threads). A copy rides on every
	// published ingest element as the watermark vector the shards'
	// remote-view caches validate against: a view of a shard-o vertex
	// extracted before routed update k to shard o must not survive a
	// watermark that includes k. The same vector rides on reader-bound
	// broadcasts, where the identical validation keeps reader-side hub
	// caches conservative.
	ledMu  sync.Mutex
	ledger []int64

	// bcastMu serializes broadcast assembly so Seq order matches publish
	// order; bcastSeq numbers broadcasts from 1 (readers apply a
	// broadcast iff its Seq is not behind the newest they have seen).
	bcastMu  sync.Mutex
	bcastSeq uint64

	// sendMu serializes Query/Feed/Sync/DeepWalk senders against Close,
	// exactly as in LiveService: senders hold it in read mode across
	// their enqueue.
	sendMu sync.RWMutex
	closed bool

	pending sync.WaitGroup // in-flight walkers (queries and bulk)
	routing sync.WaitGroup // router loop
	evloop  sync.WaitGroup // event loop

	// mu guards the pending-completion tables the event loop resolves,
	// and the dead flag that fences new registrations once it has exited.
	mu      sync.Mutex
	dead    bool // event stream ended; nothing will ever complete again
	replies map[uint64]chan []graph.VertexID
	bulks   map[uint64]*bulkRun
	syncs   map[uint64]*barrierWait
	migs    map[uint64]chan *fabric.MigrateDone // in-flight migrations by epoch
	acks    []fabric.Ack                        // latest ack per shard (cumulative tallies)
	// downs marks shards the coordinator currently considers dead (set by
	// the event loop the moment a link dies, cleared by the router at
	// failback): it gates which shards a barrier is published to and
	// which deaths need barrier fixups. specs keeps a clone of every
	// in-flight walker's launch state (replicated sessions only) so
	// walkers swallowed by a dead daemon can be relaunched; rejoins
	// tracks each in-flight rejoin's outstanding block copies.
	downs   []bool
	specs   map[uint64]*fabric.Walker
	rejoins map[int]*rejoinState

	// Credit-window flow control (tentpole half 1). routed[s] counts
	// update events (and bootstrap rows) the router has published toward
	// shard s; credited[s] is s's cumulative drain report (monotonic max
	// over EvCredit — credits may arrive reordered across transports).
	// The router blocks in waitCredits while a shard's outstanding window
	// is full, which backs the feed queue up and makes Feed itself block
	// — end-to-end backpressure instead of unbounded daemon ingest
	// queues. credDown lifts the gate for dead links (their drain signal
	// is gone; the death event, not the window, owns them now) and
	// credClosed lifts every gate when the event stream ends.
	window     int64
	credMu     sync.Mutex
	credCond   *sync.Cond
	routed     []int64
	credited   []int64
	credDown   []bool
	credClosed bool
	maxOut     int64 // largest admitted outstanding window (under credMu)
	stallNs    int64 // total router time spent credit-stalled (under credMu)

	// ctrl carries liveness transitions (death, rejoin, failback) into
	// the router goroutine, which priority-drains it: plan flips and
	// their fabric publishes must happen on the router thread to stay
	// ordered against update routing. The event loop never blocks on the
	// feed queue. priming, rejoin bookkeeping, and copySeq are
	// router-owned. copySeq numbers replica-priming copies from 1<<48 so
	// copy epochs can never collide with plan epochs in the recipients'
	// (block, epoch) stash keys.
	ctrl    chan ctrlOp
	priming []bool
	copySeq uint64

	// maxVerts tracks the observed vertex-ID bound (bootstrap sizes via
	// noteVerts, feed batches via the router) — the block-enumeration
	// horizon for replica re-priming.
	maxVerts atomic.Int64

	deaths, walkerReroutes, relaunched atomic.Int64
	rejoinsDone, copiedBlocks          atomic.Int64

	// rebStop/rebWg manage the rebalancer watch loop when cfg.Rebalance
	// is on. Close stops the loop and waits for its in-flight migration
	// *before* closing the port — the only migration source is quiescent
	// by the time the block stream tears down, so a clean Close can never
	// strand an extracted block in flight.
	rebStop chan struct{}
	rebWg   sync.WaitGroup

	queries, steps, batches, transfers, local, remote atomic.Int64
	migrations, movedEdges                            atomic.Int64

	// obsKey names this session's shard-sample exporter in the obs
	// registry; Close unregisters it so a dead session's tallies stop
	// appearing on /metrics.
	obsKey string

	errMu sync.Mutex
	err   error
}

// coordMsg is one element of the coordinator's feed queue: an update
// batch to route, or a barrier to push (the shared queue is what orders
// barriers after every batch accepted before them). boot marks a
// snapshot-bootstrap batch: fanned out to every holder replica and
// credit-counted (it occupies queue space) but kept out of the routed
// ledger and the shards' update tallies (it is not a feed event).
type coordMsg struct {
	ups  []graph.Update
	boot bool
	bar  *barrierWait
	mig  *migOp
}

// ctrlOp is one shard-liveness transition handed to the router.
type ctrlOp struct {
	kind  int
	shard int
}

const (
	ctrlDown  = iota // link died: flip the plan, announce, relaunch lost walkers
	ctrlUp           // link rejoined: reset credits, snapshot-prime its replica blocks
	ctrlClear        // priming finished: flip the shard live again, announce
)

// rejoinState tracks one in-flight rejoin's outstanding block copies
// (guarded by coordinator.mu; resolved by EvMigrated Copy reports).
type rejoinState struct {
	shard     int
	remaining int
	failed    bool
	donors    map[int]bool // shards serving as copy donors for this rejoin
}

// maxWalkerReroutes caps how many times one walker may be re-routed or
// relaunched across shard deaths before its session call fails — a
// backstop against relaunch loops when the fleet keeps churning.
const maxWalkerReroutes = 32

// migOp is one block migration routed through the feed queue, so its
// offer and commit publishes are ordered against every batch accepted
// before it.
type migOp struct {
	block    uint64
	from, to int
	epoch    uint64
}

// barrierWait tracks one barrier's acknowledgements. The router fills
// sent/acked at publish time: a barrier goes only to shards live at that
// instant, and a shard that dies between publish and ack is force-acked
// by the event loop (synthetic ack — acked[s] is what makes a late real
// ack from a half-dead link unable to double-decrement remaining).
type barrierWait struct {
	seq       uint64
	dump      bool
	heat      bool
	remaining int
	published bool
	sent      []bool
	acked     []bool
	err       error
	edges     [][]graph.Edge       // per shard, dump barriers only
	blocks    [][]fabric.BlockHeat // per shard, heat barriers only
	steps     []int64              // per shard, heat barriers only
	done      chan struct{}
}

// bulkRun aggregates one DeepWalk invocation across its walkers.
type bulkRun struct {
	steps, transfers, local, remote atomic.Int64
	visits                          *visitCounter
	wg                              sync.WaitGroup
}

func newCoordinator(port fabric.CoordPort, plan ShardPlan, cfg ShardedLiveConfig) *coordinator {
	c := &coordinator{
		port:     port,
		plan:     plan,
		cfg:      cfg,
		feed:     make(chan coordMsg, cfg.QueueDepth),
		master:   xrand.New(cfg.Seed),
		replies:  map[uint64]chan []graph.VertexID{},
		bulks:    map[uint64]*bulkRun{},
		syncs:    map[uint64]*barrierWait{},
		migs:     map[uint64]chan *fabric.MigrateDone{},
		acks:     make([]fabric.Ack, plan.Shards),
		ledger:   make([]int64, plan.Shards),
		downs:    make([]bool, plan.Shards),
		specs:    map[uint64]*fabric.Walker{},
		rejoins:  map[int]*rejoinState{},
		window:   int64(cfg.CreditWindow),
		routed:   make([]int64, plan.Shards),
		credited: make([]int64, plan.Shards),
		credDown: make([]bool, plan.Shards),
		ctrl:     make(chan ctrlOp, 4*plan.Shards+16),
		priming:  make([]bool, plan.Shards),
		copySeq:  1 << 48,
	}
	c.credCond = sync.NewCond(&c.credMu)
	c.planv.Store(&plan)
	c.routing.Add(1)
	go c.routerLoop()
	c.evloop.Add(1)
	go c.eventLoop()
	if cfg.Rebalance.On && plan.Shards > 1 {
		c.rebStop = make(chan struct{})
		c.rebWg.Add(1)
		go func() {
			defer c.rebWg.Done()
			rebalance.Run(c, cfg.Rebalance, c.rebStop, nil)
		}()
	}
	// Re-expose the newest ack-carried shard samples on this process's
	// /metrics, one shard label per node — the coordinator's scrape is
	// fleet-wide whether the shards are goroutines or remote daemons.
	c.obsKey = "coord-" + strconv.FormatUint(coordSeq.Add(1), 10)
	obs.RegisterExporter(c.obsKey, c.writeShardSamples)
	// Seed the broadcast stream so a reader attaching before the first
	// plan flip still finds the session's initial state cached.
	c.broadcastNow()
	return c
}

// writeShardSamples re-emits every shard's latest barrier-ack metrics
// sample with a shard label merged in — the aggregation path that makes
// the coordinator's /metrics cover the whole fleet.
func (c *coordinator) writeShardSamples(w io.Writer) {
	c.mu.Lock()
	samples := make([]obs.Sample, len(c.acks))
	for i := range c.acks {
		samples[i] = c.acks[i].Obs
	}
	c.mu.Unlock()
	for i := range samples {
		obs.WriteSample(w, samples[i], "shard", strconv.Itoa(i))
	}
}

// planNow returns the live ownership plan.
func (c *coordinator) planNow() ShardPlan { return *c.planv.Load() }

func (c *coordinator) setErr(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// appliedStamp sums the shards' cumulative applied-update tallies from
// the latest barrier acks — the applied-update stamp the standing-walk
// corpus reads for its bounded-staleness check. Exact as of the last
// barrier (every ack carries cumulative Updates), so a caller that just
// returned from Sync holds proof that everything it fed before the Sync
// is covered by the stamp.
func (c *coordinator) appliedStamp() int64 {
	var n int64
	c.mu.Lock()
	for i := range c.acks {
		n += c.acks[i].Updates
	}
	c.mu.Unlock()
	return n
}

// Err returns the first error the coordinator observed through acks (nil
// if none). The in-process service prefers its nodes' own records; the
// remote service has only this.
func (c *coordinator) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// routerLoop splits each feed batch by owner shard, preserving per-source
// order (single router, FIFO per-shard publish streams), and forwards
// barriers to every shard ordered after the batches before them. Every
// published element carries the routed-update ledger as of *after* the
// whole batch was accounted, so a shard learns about updates in flight
// to its peers no later than it learns about its own.
//
// Liveness transitions arrive on the ctrl channel and are drained with
// priority: a plan flip and its fabric announcements must interleave
// with update routing at exactly one point, and running them here — on
// the same goroutine that splits batches — is what makes "before the
// flip" and "after the flip" well-defined for every stream at once.
func (c *coordinator) routerLoop() {
	defer c.routing.Done()
	for {
		select {
		case op := <-c.ctrl:
			c.handleCtrl(op)
			continue
		default:
		}
		select {
		case op := <-c.ctrl:
			c.handleCtrl(op)
		case m, ok := <-c.feed:
			if !ok {
				return
			}
			switch {
			case m.bar != nil:
				c.publishBarrier(m.bar)
			case m.mig != nil:
				c.routeMigration(m.mig)
			default:
				c.routeBatch(m)
			}
		}
	}
}

// routeBatch fans one accepted batch out to its target shards. Without
// replication each update goes to its owner; with replication it goes to
// every live (or priming) member of its block's replica group, so every
// replica holds identical rows built from the identical routed stream —
// the invariant that makes promotion a mask flip. Each per-shard publish
// first passes the credit window.
func (c *coordinator) routeBatch(m coordMsg) {
	plan := c.planNow()
	replicated := plan.Replicas > 1
	if !m.boot {
		c.batches.Add(1)
		coordIngestBatches.Inc()
		coordIngestUpdates.Add(int64(len(m.ups)))
	}
	if replicated || m.boot {
		// Track the vertex-ID horizon for replica re-priming.
		hi := int64(-1)
		for _, up := range m.ups {
			if int64(up.Src) > hi {
				hi = int64(up.Src)
			}
			if int64(up.Dst) > hi {
				hi = int64(up.Dst)
			}
		}
		if hi >= 0 {
			c.noteVerts(hi + 1)
		}
	}
	parts := make([][]graph.Update, plan.Shards)
	if !replicated {
		for _, up := range m.ups {
			parts[plan.Owner(up.Src)] = append(parts[plan.Owner(up.Src)], up)
		}
	} else {
		for _, up := range m.ups {
			for _, h := range plan.GroupMembers(plan.BlockOf(up.Src)) {
				if plan.Alive(h) || c.priming[h] {
					parts[h] = append(parts[h], up)
				}
			}
		}
	}
	if !m.boot {
		c.ledMu.Lock()
		for i, p := range parts {
			c.ledger[i] += int64(len(p))
		}
		c.ledMu.Unlock()
	}
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		c.waitCredits(i, int64(len(p)))
		if err := c.port.PublishUpdates(i, fabric.Ingest{Ups: p, Boot: m.boot, Watermarks: c.ledgerCopy()}); err != nil {
			if replicated {
				// A dead link announces itself through EvShardDown; the
				// death path re-routes, so a failed publish is not fatal.
				continue
			}
			c.setErr(err)
		}
	}
}

// waitCredits blocks until shard s's outstanding credit window admits n
// more update events, then charges them. An oversized batch (n alone
// exceeding the window) is admitted whenever the window is empty —
// otherwise it could never be published at all. Gates lift for dead
// links (credDown — the death event owns them) and when the event
// stream ends (credClosed — nothing will ever credit again).
func (c *coordinator) waitCredits(s int, n int64) {
	if c.window <= 0 || n == 0 {
		return
	}
	c.credMu.Lock()
	for !c.credClosed && !c.credDown[s] {
		out := c.routed[s] - c.credited[s]
		if out <= 0 || out+n <= c.window {
			break
		}
		t0 := time.Now()
		c.credCond.Wait()
		d := time.Since(t0)
		c.stallNs += d.Nanoseconds()
		coordCreditStallNs.Observe(d)
		if d >= journalStallMin {
			obs.Log.Record(obs.EvCreditStall, s, d.String())
		}
	}
	c.routed[s] += n
	if out := c.routed[s] - c.credited[s]; out > c.maxOut {
		c.maxOut = out
	}
	c.credMu.Unlock()
}

// onCredit folds one shard's cumulative drain report into the window.
// Monotonic max: transports may reorder credits across link rebuilds,
// and a cumulative counter makes every credit self-repairing.
func (c *coordinator) onCredit(cr *fabric.Credit) {
	if cr == nil || cr.Shard < 0 || cr.Shard >= len(c.credited) {
		return
	}
	c.credMu.Lock()
	if cr.Credited > c.credited[cr.Shard] {
		c.credited[cr.Shard] = cr.Credited
		c.credCond.Broadcast()
	}
	c.credMu.Unlock()
}

// noteVerts raises the observed vertex-space bound (CAS max).
func (c *coordinator) noteVerts(n int64) {
	for {
		cur := c.maxVerts.Load()
		if n <= cur || c.maxVerts.CompareAndSwap(cur, n) {
			return
		}
	}
}

// publishBarrier sends one barrier to every shard live at this instant
// and arms its completion accounting. Dead shards are excluded — their
// replicas answer for their blocks (dump acks are ownership-filtered
// shard-side under replication, so the concatenation stays an exact
// partition). A barrier with no live shards completes immediately.
func (c *coordinator) publishBarrier(bw *barrierWait) {
	wms := c.ledgerCopy()
	c.mu.Lock()
	if _, still := c.syncs[bw.seq]; !still {
		// failPending already resolved it (event stream died first).
		c.mu.Unlock()
		return
	}
	bw.sent = make([]bool, c.plan.Shards)
	bw.acked = make([]bool, c.plan.Shards)
	n := 0
	for i := range bw.sent {
		if !c.downs[i] {
			bw.sent[i] = true
			n++
		}
	}
	bw.remaining = n
	bw.published = true
	if n == 0 {
		delete(c.syncs, bw.seq)
		close(bw.done)
		c.mu.Unlock()
		return
	}
	all := n == c.plan.Shards
	c.mu.Unlock()
	tok := fabric.Ingest{Barrier: bw.seq, Dump: bw.dump, Heat: bw.heat, Watermarks: wms}
	if all {
		if err := c.port.PublishBarrier(tok); err != nil {
			c.setErr(err)
		}
		return
	}
	for i := range bw.sent {
		if !bw.sent[i] {
			continue
		}
		if err := c.port.PublishUpdates(i, tok); err != nil && c.planNow().Replicas <= 1 {
			c.setErr(err)
		}
	}
}

// ledgerCopy snapshots the routed-update ledger for one wire message.
func (c *coordinator) ledgerCopy() []int64 {
	c.ledMu.Lock()
	defer c.ledMu.Unlock()
	return append([]int64(nil), c.ledger...)
}

// broadcastNow publishes the coordinator's current control state to
// every attached read-coordinator: live plan (epoch, overlay, dead-mask,
// geometry), routed-update watermarks, and the applied stamp. Broadcasts
// are full-state and idempotent, so any single one brings a reader
// current — the transports cache the newest for late attachers. Called
// after every plan flip (migration commit, death, failback), at session
// start, and at every barrier completion (the applied stamp moved).
func (c *coordinator) broadcastNow() {
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	c.bcastSeq++
	p := c.planNow()
	var ov map[uint64]int
	if len(p.Overlay) > 0 {
		ov = make(map[uint64]int, len(p.Overlay))
		for b, o := range p.Overlay {
			ov[b] = o
		}
	}
	b := fabric.Broadcast{
		Seq:        c.bcastSeq,
		Epoch:      p.Epoch,
		Overlay:    ov,
		DeadMask:   p.DeadMask,
		RangeSize:  p.RangeSize,
		Replicas:   p.Replicas,
		Vertices:   int(max(c.maxVerts.Load(), int64(p.RangeSize)*int64(p.Shards))),
		Watermarks: c.ledgerCopy(),
		Applied:    c.appliedStamp(),
	}
	coordBroadcasts.Inc()
	// Best effort: a broadcast that cannot be delivered (session tearing
	// down) only means readers are ending too.
	_ = c.port.PublishBroadcast(b)
}

// routeMigration publishes one migration's fabric messages from inside
// the router loop, which is what gives the protocol its ordering
// guarantees: the offer lands on the donor's FIFO stream *after* every
// batch routed to it so far (so the extracted rows contain them), the
// routing flip happens before any later batch is split (so updates for
// the moved block queue behind the recipient's commit), and the commit
// lands on every shard's stream after the flip (so the recipient
// installs the rows before applying those updates).
func (c *coordinator) routeMigration(mg *migOp) {
	// Validate the flip before anything is published: once the offer is
	// on the donor's stream the commit MUST follow (the recipient's
	// ingester will block on the shipped rows), so a plan the overlay
	// rejects has to fail the migration here, wedging nothing.
	cur := c.planNow()
	next, err := cur.WithOverlay(mg.block, mg.to, mg.epoch)
	if err != nil {
		c.setErr(err)
		c.onMigrated(&fabric.MigrateDone{Block: mg.block, Epoch: mg.epoch, Err: err.Error()})
		return
	}
	obs.Log.Record(obs.EvMigrationOffer, mg.from,
		fmt.Sprintf("block %d -> shard %d (epoch %d)", mg.block, mg.to, mg.epoch))
	if err := c.port.PublishUpdates(mg.from, fabric.Ingest{
		Offer:      fabric.MigrateOffer{Block: mg.block, To: mg.to, Epoch: mg.epoch},
		Watermarks: c.ledgerCopy(),
	}); err != nil {
		c.setErr(err)
	}
	c.planv.Store(&next)
	obs.Log.Record(obs.EvPlanFlip, -1, fmt.Sprintf("epoch %d: block %d overlay -> shard %d", next.Epoch, mg.block, mg.to))
	cm := fabric.MigrateCommit{Block: mg.block, From: mg.from, To: mg.to, Epoch: mg.epoch, MinWatermark: c.ledger[mg.from]}
	for i := 0; i < c.plan.Shards; i++ {
		if err := c.port.PublishUpdates(i, fabric.Ingest{Commit: cm, Watermarks: c.ledgerCopy()}); err != nil {
			c.setErr(err)
		}
	}
	obs.Log.Record(obs.EvMigrationCommit, mg.to,
		fmt.Sprintf("block %d from shard %d (epoch %d)", mg.block, mg.from, mg.epoch))
	// Readers learn the flipped plan (and drop cached views of the moved
	// block) through the broadcast stream.
	c.broadcastNow()
}

// handleCtrl runs one liveness transition on the router thread.
func (c *coordinator) handleCtrl(op ctrlOp) {
	switch op.kind {
	case ctrlDown:
		c.ctrlDownOp(op.shard)
	case ctrlUp:
		c.ctrlUpOp(op.shard)
	case ctrlClear:
		c.ctrlClearOp(op.shard)
	}
}

// pushCtrl hands a liveness transition to the router. The buffer is
// sized beyond any realistic burst (a few transitions per link per
// session), and the router cannot be wedged while one is pending: the
// event loop lifts the relevant credit gate before pushing, so a router
// blocked in waitCredits always wakes.
func (c *coordinator) pushCtrl(op ctrlOp) {
	c.ctrl <- op
}

// ctrlDownOp handles one shard's link death: abort any priming the dead
// shard was part of (as rejoiner or as copy donor — a donor death
// strands its copies, and the wedged rejoiner stays conservatively
// masked dead), flip the plan, announce the flip on every live shard's
// FIFO stream (the ordering that makes the dead-mask consistent at
// barrier points), and relaunch every in-flight walker from its stored
// launch clone — anything queued inside the dead daemon is gone, and a
// duplicate retire from a walker that was actually elsewhere resolves
// harmlessly (first retire wins).
func (c *coordinator) ctrlDownOp(s int) {
	c.priming[s] = false
	c.mu.Lock()
	delete(c.rejoins, s)
	var abandoned []int
	for rsh, rs := range c.rejoins {
		if rs.donors[s] {
			delete(c.rejoins, rsh)
			abandoned = append(abandoned, rsh)
		}
	}
	c.mu.Unlock()
	for _, a := range abandoned {
		c.priming[a] = false
		c.credMu.Lock()
		c.credDown[a] = true
		c.credCond.Broadcast()
		c.credMu.Unlock()
	}
	plan := c.planNow()
	if !plan.Alive(s) {
		return // rejoin churn: the shard died again while already masked
	}
	next, err := plan.WithDown(s, plan.Epoch+1)
	if err != nil {
		c.setErr(err)
		return
	}
	c.planv.Store(&next)
	obs.Log.Record(obs.EvShardDeath, s, fmt.Sprintf("masked dead (epoch %d)", next.Epoch))
	if next.Replicas > 1 {
		// Each block the dead shard owned now answers from its group's
		// surviving owner — the promotion the mask flip implies.
		obs.Log.Record(obs.EvShardPromote, s, "replica group serving the dead shard's blocks")
	}
	sd := fabric.ShardDown{Shard: s, Epoch: next.Epoch}
	for i := 0; i < c.plan.Shards; i++ {
		if !next.Alive(i) {
			continue
		}
		// Publish errors here are the target's own death in progress;
		// its event fixes the plan again.
		_ = c.port.PublishUpdates(i, fabric.Ingest{Down: sd, Watermarks: c.ledgerCopy()})
	}
	c.broadcastNow() // readers re-route around the new dead-mask
	c.relaunchPending()
}

// relaunchPending re-launches a clone of every still-pending walker (its
// original may be lost inside a dead daemon). Each clone burns one
// reroute from the walker's budget, which bounds relaunch churn across
// repeated deaths.
func (c *coordinator) relaunchPending() {
	c.mu.Lock()
	clones := make([]*fabric.Walker, 0, len(c.specs))
	for id, w := range c.specs {
		_, q := c.replies[id]
		_, b := c.bulks[id]
		if !q && !b {
			delete(c.specs, id) // resolved already; drop the stale clone
			continue
		}
		if w.Reroutes >= maxWalkerReroutes {
			continue
		}
		w.Reroutes++
		clones = append(clones, cloneWalker(w))
	}
	c.mu.Unlock()
	for _, w := range clones {
		c.relaunched.Add(1)
		go c.relaunchWalker(w)
	}
}

// ctrlUpOp handles a rejoined shard: reset its credit accounting (a
// restarted daemon's counter begins at 0), start fanning the routed
// stream out to it (priming), send it a plan snapshot — the first
// element on its fresh FIFO stream, catching it up on every flip it
// missed — and snapshot-copy every replica block it should hold from
// that block's live owner. The whole op runs without yielding to the
// feed queue, which is the no-loss/no-duplication cut: updates routed
// before it are in the donors' snapshots (FIFO puts them before the
// offers), updates routed after it reach the rejoiner directly.
func (c *coordinator) ctrlUpOp(s int) {
	plan := c.planNow()
	if plan.Replicas <= 1 || plan.Alive(s) || c.priming[s] {
		return
	}
	c.credMu.Lock()
	c.routed[s], c.credited[s] = 0, 0
	c.credDown[s] = false
	c.credMu.Unlock()
	c.priming[s] = true
	ps := &fabric.PlanState{Epoch: plan.Epoch, Overlay: plan.Overlay, DeadMask: plan.DeadMask}
	if err := c.port.PublishUpdates(s, fabric.Ingest{Plan: ps, Watermarks: c.ledgerCopy()}); err != nil {
		c.abortRejoin(s)
		return
	}
	rsize := int64(plan.RangeSize)
	nblocks := (c.maxVerts.Load() + rsize - 1) / rsize
	type copyJob struct {
		block uint64
		donor int
	}
	var jobs []copyJob
	rs := &rejoinState{shard: s, donors: map[int]bool{}}
	for b := int64(0); b < nblocks; b++ {
		bb := uint64(b)
		if !plan.InGroup(bb, s) {
			continue
		}
		donor := plan.BlockOwner(bb)
		if donor == s || !plan.Alive(donor) {
			continue // whole group dead: nothing live to copy from
		}
		jobs = append(jobs, copyJob{bb, donor})
		rs.donors[donor] = true
	}
	if len(jobs) == 0 {
		// Nothing to prime (empty graph, or no live donors): fail back
		// immediately — an empty shard is exactly what its replicas hold
		// for it in that case.
		c.ctrlClearOp(s)
		return
	}
	rs.remaining = len(jobs)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.rejoins[s] = rs
	c.mu.Unlock()
	for _, j := range jobs {
		epoch := c.copySeq
		c.copySeq++
		off := fabric.MigrateOffer{Block: j.block, To: s, Epoch: epoch, Copy: true}
		if err := c.port.PublishUpdates(j.donor, fabric.Ingest{Offer: off, Watermarks: c.ledgerCopy()}); err != nil {
			c.abortRejoin(s)
			return
		}
		cm := fabric.MigrateCommit{Block: j.block, From: j.donor, To: s, Epoch: epoch, MinWatermark: c.ledger[j.donor], Copy: true}
		if err := c.port.PublishUpdates(s, fabric.Ingest{Commit: cm, Watermarks: c.ledgerCopy()}); err != nil {
			c.abortRejoin(s)
			return
		}
	}
}

// abortRejoin abandons an in-flight rejoin (router thread): the shard
// stays masked dead, its credit gate lifts again, and the session keeps
// running on the survivors. A later EvShardUp retries from scratch —
// copy installs wipe the block range first, so re-priming is idempotent.
func (c *coordinator) abortRejoin(s int) {
	c.priming[s] = false
	c.mu.Lock()
	delete(c.rejoins, s)
	c.mu.Unlock()
	c.credMu.Lock()
	c.credDown[s] = true
	c.credCond.Broadcast()
	c.credMu.Unlock()
}

// ctrlClearOp fails a fully-primed shard back in: flip it live, then
// announce the flip on every live shard's FIFO — including the
// rejoiner's, whose own plan learns the flip in the same ordered stream
// that already carried its snapshot and primed rows. Barriers include
// the shard again from here on.
func (c *coordinator) ctrlClearOp(s int) {
	plan := c.planNow()
	if plan.Alive(s) {
		return
	}
	next, err := plan.WithUp(s, plan.Epoch+1)
	if err != nil {
		c.setErr(err)
		return
	}
	c.planv.Store(&next)
	c.priming[s] = false
	sd := fabric.ShardDown{Shard: s, Epoch: next.Epoch, Up: true}
	for i := 0; i < c.plan.Shards; i++ {
		if !next.Alive(i) {
			continue
		}
		_ = c.port.PublishUpdates(i, fabric.Ingest{Down: sd, Watermarks: c.ledgerCopy()})
	}
	c.mu.Lock()
	c.downs[s] = false
	c.mu.Unlock()
	c.rejoinsDone.Add(1)
	obs.Log.Record(obs.EvShardRejoin, s, fmt.Sprintf("primed and live again (epoch %d)", next.Epoch))
	c.broadcastNow() // readers see the shard live again
}

// cloneWalker deep-copies a walker's launch state (Path is the only
// reference field).
func cloneWalker(w *fabric.Walker) *fabric.Walker {
	cp := *w
	cp.Path = append([]graph.VertexID(nil), w.Path...)
	return &cp
}

// relaunchWalker retries launching a walker toward its vertex's current
// owner until a live link accepts it — the plan flip races the launch,
// so early attempts may still name the dead shard. On giving up the
// walker is retired as failed through the normal resolution path.
func (c *coordinator) relaunchWalker(w *fabric.Walker) {
	for i := 0; i < 50; i++ {
		if err := c.port.LaunchWalker(c.planNow().Owner(w.Cur), w); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	w.Failed = true
	w.Reroutes = maxWalkerReroutes // no further re-route attempts
	c.onRetire(w)
}

// eventLoop consumes retires and acks until the fabric's event stream
// ends, then fails whatever is still pending (a clean Close leaves
// nothing pending; a dead session must not leave callers blocked).
func (c *coordinator) eventLoop() {
	defer c.evloop.Done()
	for {
		ev, ok := c.port.NextEvent()
		if !ok {
			break
		}
		switch ev.Kind {
		case fabric.EvRetire:
			c.onRetire(ev.Walker)
		case fabric.EvAck:
			c.onAck(ev.Ack)
		case fabric.EvMigrated:
			if ev.Done != nil && ev.Done.Copy {
				c.onCopyDone(ev.Done)
			} else {
				c.onMigrated(ev.Done)
			}
		case fabric.EvCredit:
			c.onCredit(ev.Credit)
		case fabric.EvShardDown:
			c.onShardDown(ev.Shard)
		case fabric.EvShardUp:
			c.onShardUp(ev.Shard)
		}
	}
	c.failPending()
}

// onShardDown reacts to one link's death on the event thread: lift the
// shard's credit gate (its drain signal is gone — a router stalled on
// it must wake *before* the ctrl op can be processed), mark it down for
// barrier publishing, force-ack its outstanding barriers (synthetic
// acks; a late real ack can no longer double-decrement), then hand the
// plan flip to the router. Without replication a shard loss is the end
// of the session, exactly as before.
func (c *coordinator) onShardDown(s int) {
	if s < 0 || s >= c.plan.Shards {
		return
	}
	if c.planNow().Replicas <= 1 {
		c.setErr(ErrFabricDown)
		return
	}
	c.deaths.Add(1)
	c.credMu.Lock()
	c.credDown[s] = true
	c.credCond.Broadcast()
	c.credMu.Unlock()
	c.mu.Lock()
	if !c.downs[s] {
		c.downs[s] = true
		for seq, bw := range c.syncs {
			if bw.published && bw.sent[s] && !bw.acked[s] {
				bw.acked[s] = true
				bw.remaining--
				if bw.remaining <= 0 {
					delete(c.syncs, seq)
					close(bw.done)
				}
			}
		}
	}
	c.mu.Unlock()
	c.pushCtrl(ctrlOp{kind: ctrlDown, shard: s})
}

// onShardUp hands a rejoined link to the router for snapshot priming.
func (c *coordinator) onShardUp(s int) {
	if s < 0 || s >= c.plan.Shards || c.planNow().Replicas <= 1 {
		return
	}
	c.pushCtrl(ctrlOp{kind: ctrlUp, shard: s})
}

// onCopyDone resolves one replica-priming block copy. When a rejoin's
// last copy lands cleanly the router fails the shard back in; any
// failed copy abandons the rejoin (the shard stays masked dead — a
// later reconnect retries from scratch, idempotently).
func (c *coordinator) onCopyDone(d *fabric.MigrateDone) {
	if d.Err == "" {
		c.copiedBlocks.Add(1)
	}
	c.mu.Lock()
	rs := c.rejoins[d.Shard]
	if rs == nil {
		c.mu.Unlock()
		return // abandoned rejoin; straggler report
	}
	if d.Err != "" {
		rs.failed = true
	}
	rs.remaining--
	done := rs.remaining <= 0
	failed := rs.failed
	if done {
		delete(c.rejoins, d.Shard)
	}
	c.mu.Unlock()
	if !done {
		return
	}
	if failed {
		c.pushCtrl(ctrlOp{kind: ctrlDown, shard: d.Shard})
		return
	}
	c.pushCtrl(ctrlOp{kind: ctrlClear, shard: d.Shard})
}

func (c *coordinator) onRetire(w *fabric.Walker) {
	c.mu.Lock()
	reply, isQ := c.replies[w.ID]
	var run *bulkRun
	var isB bool
	if !isQ {
		run, isB = c.bulks[w.ID]
	}
	if !isQ && !isB {
		// Duplicate retire: the walker was relaunched after a shard death
		// and both copies finished — the first resolution won. (Also
		// covers retires arriving after failPending.)
		c.mu.Unlock()
		return
	}
	if w.Failed && c.planNow().Replicas > 1 && w.Reroutes < maxWalkerReroutes {
		// A crew's forward hit a dead link. The retire carries the
		// walker's exact mid-walk state (position, budget, RNG), so it
		// continues on a live replica instead of failing the session.
		c.mu.Unlock()
		w.Failed = false
		w.Reroutes++
		c.walkerReroutes.Add(1)
		go c.relaunchWalker(w)
		return
	}
	if isQ {
		delete(c.replies, w.ID)
	} else {
		delete(c.bulks, w.ID)
	}
	delete(c.specs, w.ID)
	c.mu.Unlock()
	// Tallies fold in only at resolution, so a duplicate or rerouted
	// retire never double-counts.
	c.steps.Add(w.Steps)
	c.transfers.Add(w.Transfers)
	c.local.Add(w.Local)
	c.remote.Add(w.Remote)
	if w.Failed {
		c.setErr(ErrFabricDown)
	}
	if isQ {
		c.queries.Add(1)
		if w.Failed {
			reply <- nil // Query maps a nil path to ErrFabricDown
		} else {
			reply <- w.Path
		}
		c.pending.Done()
		return
	}
	run.steps.Add(w.Steps)
	run.transfers.Add(w.Transfers)
	run.local.Add(w.Local)
	run.remote.Add(w.Remote)
	if run.visits != nil {
		for _, v := range w.Path {
			run.visits.bump(v)
		}
	}
	run.wg.Done()
	c.pending.Done()
}

func (c *coordinator) onAck(a *fabric.Ack) {
	if a.Err != "" {
		c.setErr(errors.New(a.Err))
	}
	completed := false
	c.mu.Lock()
	if a.Shard >= 0 && a.Shard < len(c.acks) {
		// Cache the scalar tallies only: a dump barrier's edge snapshot
		// and a heat barrier's block report (already handed to their
		// barrierWait below) must not stay live in the session-long
		// table.
		cached := *a
		cached.Edges = nil
		cached.Heat = nil
		c.acks[a.Shard] = cached
	}
	bw := c.syncs[a.Seq]
	if bw != nil {
		if a.Err != "" && bw.err == nil {
			bw.err = errors.New(a.Err)
		}
		if bw.edges != nil && a.Shard >= 0 && a.Shard < len(bw.edges) {
			bw.edges[a.Shard] = a.Edges
		}
		if bw.blocks != nil && a.Shard >= 0 && a.Shard < len(bw.blocks) {
			bw.blocks[a.Shard] = a.Heat
			bw.steps[a.Shard] = a.Steps
		}
		counted := false
		if bw.acked != nil && a.Shard >= 0 && a.Shard < len(bw.acked) {
			// acked-once: a shard force-acked at its death (synthetic ack)
			// must not decrement again if the real ack straggles in.
			if !bw.acked[a.Shard] {
				bw.acked[a.Shard] = true
				counted = true
			}
		} else {
			counted = true
		}
		if counted {
			bw.remaining--
			if bw.remaining <= 0 {
				delete(c.syncs, a.Seq)
				close(bw.done)
				completed = true
			}
		}
	}
	c.mu.Unlock()
	if completed {
		// The applied stamp just advanced past everything fed before the
		// barrier; push it to readers so their WaitApplied unblocks.
		c.broadcastNow()
	}
}

// onMigrated resolves the in-flight migration the report names.
func (c *coordinator) onMigrated(d *fabric.MigrateDone) {
	c.mu.Lock()
	ch := c.migs[d.Epoch]
	delete(c.migs, d.Epoch)
	c.mu.Unlock()
	if ch != nil {
		ch <- d
	}
}

// failPending unblocks every caller still waiting when the event stream
// dies: queries get a nil path (their Query call maps it to
// ErrFabricDown), bulk runs and barriers complete with the error. It
// also marks the coordinator dead under the same lock registrations take,
// so no later caller can register into a table nothing will ever resolve.
func (c *coordinator) failPending() {
	// Lift every credit gate first: a router blocked in waitCredits must
	// wake (nothing will ever credit again) or Close would deadlock.
	c.credMu.Lock()
	c.credClosed = true
	c.credCond.Broadcast()
	c.credMu.Unlock()
	c.mu.Lock()
	c.dead = true
	replies := c.replies
	bulks := c.bulks
	syncs := c.syncs
	migs := c.migs
	c.replies = map[uint64]chan []graph.VertexID{}
	c.bulks = map[uint64]*bulkRun{}
	c.syncs = map[uint64]*barrierWait{}
	c.migs = map[uint64]chan *fabric.MigrateDone{}
	c.specs = map[uint64]*fabric.Walker{}
	c.rejoins = map[int]*rejoinState{}
	c.mu.Unlock()
	for _, ch := range migs {
		ch <- nil // Migrate maps nil to ErrFabricDown
	}
	for _, ch := range replies {
		ch <- nil
		c.pending.Done()
	}
	for _, run := range bulks {
		run.wg.Done()
		c.pending.Done()
	}
	for _, bw := range syncs {
		if bw.err == nil {
			bw.err = ErrFabricDown
		}
		close(bw.done)
	}
	if len(replies)+len(bulks)+len(syncs)+len(migs) > 0 {
		c.setErr(ErrFabricDown)
	}
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) and returns the visited path, start included. The
// walk begins on the shard owning start and follows the walker-transfer
// topology; the call blocks until the walker retires.
func (c *coordinator) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	if length <= 0 {
		length = c.cfg.WalkLength
	}
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	id := c.idSeq.Add(1)
	path := make([]graph.VertexID, 1, length+1)
	path[0] = start
	wk := &fabric.Walker{
		ID:     id,
		Cur:    start,
		Left:   length,
		Rng:    c.master.Split(id).State(),
		Record: true,
		Path:   path,
	}
	reply := make(chan []graph.VertexID, 1)
	replicated := c.planNow().Replicas > 1
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, ErrFabricDown
	}
	// pending.Add must happen before the registration is visible: the
	// matching Done comes from the event loop (retire or failPending),
	// which may run the instant the lock is released.
	c.pending.Add(1)
	c.replies[id] = reply
	if replicated {
		// The clone outlives the launch: a shard death relaunches every
		// pending walker from its stored spec (registered before the
		// launch so no death can fall between them unseen).
		c.specs[id] = cloneWalker(wk)
	}
	c.mu.Unlock()
	if err := c.port.LaunchWalker(c.planNow().Owner(start), wk); err != nil {
		if replicated {
			// The target link died under the launch; retry toward
			// whatever replica the flipped plan names.
			go c.relaunchWalker(wk)
		} else {
			c.mu.Lock()
			if _, still := c.replies[id]; still {
				delete(c.replies, id)
				c.pending.Done()
			}
			c.mu.Unlock()
			c.sendMu.RUnlock()
			return nil, err
		}
	}
	c.sendMu.RUnlock()
	p := <-reply
	if p == nil {
		return nil, ErrFabricDown
	}
	if !t0.IsZero() {
		coordQueryNs.ObserveSince(t0)
	}
	return p, nil
}

// Feed enqueues a batch for routed ingestion. It blocks when the feed
// queue is full (backpressure) and returns ErrLiveClosed after Close. The
// batch slice is owned by the coordinator once accepted; per-source order
// across Feed calls is preserved shard-side (the LiveService contract).
func (c *coordinator) Feed(ups []graph.Update) error {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	if c.closed {
		return ErrLiveClosed
	}
	c.feed <- coordMsg{ups: ups}
	return nil
}

// feedBoot enqueues a snapshot-bootstrap batch: routed to every holder
// replica, credit-gated like any batch (it occupies daemon queue space),
// but excluded from the routed ledger and the shards' update tallies —
// bootstrap rows are initial state, not feed events.
func (c *coordinator) feedBoot(ups []graph.Update) error {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	if c.closed {
		return ErrLiveClosed
	}
	c.feed <- coordMsg{ups: ups, boot: true}
	return nil
}

// barrier pushes a sync (optionally dump or heat) barrier through the
// feed queue and blocks until every shard acknowledged it.
func (c *coordinator) barrier(dump, heat bool) (*barrierWait, error) {
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return nil, ErrLiveClosed
	}
	bw := &barrierWait{
		seq:       c.barSeq.Add(1),
		dump:      dump,
		heat:      heat,
		remaining: c.plan.Shards,
		done:      make(chan struct{}),
	}
	if dump {
		bw.edges = make([][]graph.Edge, c.plan.Shards)
	}
	if heat {
		bw.blocks = make([][]fabric.BlockHeat, c.plan.Shards)
		bw.steps = make([]int64, c.plan.Shards)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return nil, ErrFabricDown
	}
	c.syncs[bw.seq] = bw
	c.mu.Unlock()
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	c.feed <- coordMsg{bar: bw}
	c.sendMu.RUnlock()
	<-bw.done
	if !t0.IsZero() {
		coordBarrierNs.ObserveSince(t0)
	}
	return bw, nil
}

// Sync blocks until every feed batch accepted before the call has been
// applied (or dropped) on its shards, then reports the first ingest
// error observed anywhere.
func (c *coordinator) Sync() error {
	bw, err := c.barrier(false, false)
	if err != nil {
		return err
	}
	if bw.err != nil {
		return bw.err
	}
	return c.Err()
}

// DumpEdges drives a dump barrier: it returns every shard's live edge
// multiset as of a point after all previously accepted feed batches
// (the read-back path distributed verification is built on).
func (c *coordinator) DumpEdges() ([][]graph.Edge, error) {
	bw, err := c.barrier(true, false)
	if err != nil {
		return nil, err
	}
	return bw.edges, bw.err
}

// DeepWalk runs a bulk first-order walk through the sharded runtime while
// the feed keeps ingesting: every start becomes a transferable walker
// with its own RNG stream. numVertices is the caller's view of the
// current vertex space (default start set and visit-tally sizing).
//
// Visit counting rides on walker paths: a CountVisits run makes every
// walker record its hops and the coordinator folds them into the tally at
// retire, which is what lets the identical protocol cross a process
// boundary (shards share no counter). The cost is O(len(starts) × Length)
// transient path memory across in-flight walkers — bound the start set
// for visit-counting runs over very large graphs.
func (c *coordinator) DeepWalk(cfg Config, numVertices int) (Result, TransferStats, error) {
	cfg = cfg.withDefaults(numVertices)
	starts := cfg.Starts
	if starts == nil {
		starts = make([]graph.VertexID, numVertices)
		for i := range starts {
			starts[i] = graph.VertexID(i)
		}
	}
	run := &bulkRun{}
	if cfg.CountVisits {
		run.visits = newVisitCounter(numVertices)
	}
	bulkMaster := xrand.New(cfg.Seed)

	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return Result{}, TransferStats{}, ErrLiveClosed
	}
	// Register every walker before launching any: a retire must never
	// find its run missing. The Adds precede the registrations for the
	// same reason as in Query: failPending may Done them the instant the
	// lock drops.
	ids := make([]uint64, len(starts))
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return Result{}, TransferStats{}, ErrFabricDown
	}
	run.wg.Add(len(starts))
	c.pending.Add(len(starts))
	for i := range starts {
		ids[i] = c.idSeq.Add(1)
		c.bulks[ids[i]] = run
	}
	c.mu.Unlock()
	replicated := c.planNow().Replicas > 1
	for i, st := range starts {
		if run.visits != nil {
			run.visits.bump(st)
		}
		wk := &fabric.Walker{
			ID:     ids[i],
			Cur:    st,
			Left:   cfg.Length,
			Rng:    bulkMaster.Split(uint64(i)).State(),
			Record: cfg.CountVisits,
		}
		if replicated {
			// Spec before launch: a death between the two relaunches the
			// clone, and a duplicate retire resolves harmlessly.
			c.mu.Lock()
			if _, still := c.bulks[ids[i]]; still {
				c.specs[ids[i]] = cloneWalker(wk)
			}
			c.mu.Unlock()
		}
		if err := c.port.LaunchWalker(c.planNow().Owner(st), wk); err != nil {
			if replicated {
				go c.relaunchWalker(wk)
				continue
			}
			c.setErr(err)
			c.mu.Lock()
			if _, still := c.bulks[ids[i]]; still {
				delete(c.bulks, ids[i])
				run.wg.Done()
				c.pending.Done()
			}
			c.mu.Unlock()
		}
	}
	c.sendMu.RUnlock()
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	run.wg.Wait()
	if !t0.IsZero() {
		coordDeepwalkNs.ObserveSince(t0)
	}

	res := Result{Walkers: len(starts), Steps: run.steps.Load()}
	if run.visits != nil {
		res.Visits = run.visits.snapshot()
	}
	return res, TransferStats{Transfers: run.transfers.Load(), Local: run.local.Load(), Remote: run.remote.Load()}, nil
}

// Close drains the feed (queued batches are routed and applied), stops
// the rebalancer (waiting out its in-flight migration, so no extracted
// block is ever stranded by the teardown), waits for every in-flight
// walker to retire, ends the fabric session, and waits for the event
// stream to wind down. Idempotent.
func (c *coordinator) Close() error {
	c.sendMu.Lock()
	first := !c.closed
	if first {
		c.closed = true
		close(c.feed)
	}
	c.sendMu.Unlock()
	if first {
		if c.rebStop != nil {
			close(c.rebStop)
			c.rebWg.Wait() // in-flight migration completes via the event loop
		}
		c.routing.Wait() // every accepted batch published
		c.pending.Wait() // every accepted walker retired
		c.port.Close()
		obs.UnregisterExporter(c.obsKey)
	}
	c.evloop.Wait()
	return c.Err()
}

// backpressureTallies snapshots the credit window's activity.
func (c *coordinator) backpressureTallies() (maxOutstanding int64, stall time.Duration) {
	c.credMu.Lock()
	defer c.credMu.Unlock()
	return c.maxOut, time.Duration(c.stallNs)
}

// failoverTallies snapshots the replica-failover activity counters.
func (c *coordinator) failoverTallies() FailoverTallies {
	return FailoverTallies{
		Deaths:       c.deaths.Load(),
		Reroutes:     c.walkerReroutes.Load(),
		Relaunches:   c.relaunched.Load(),
		Rejoins:      c.rejoinsDone.Load(),
		CopiedBlocks: c.copiedBlocks.Load(),
	}
}

// rebalanceTallies snapshots the rebalancer's activity counters.
func (c *coordinator) rebalanceTallies() RebalanceTallies {
	return RebalanceTallies{
		Migrations: c.migrations.Load(),
		MovedEdges: c.movedEdges.Load(),
		PlanEpoch:  c.planNow().Epoch,
	}
}

// ---------------------------------------------------------------------------
// rebalance.Controller — the mechanism half of the heat-aware rebalancer.

// Shards returns the partition count.
func (c *coordinator) Shards() int { return c.plan.Shards }

// BlockOwner resolves a block's owner under the live plan.
func (c *coordinator) BlockOwner(b uint64) int { return c.planNow().BlockOwner(b) }

// Heat drives a heat barrier and returns every shard's report: the
// node's cumulative step count plus its per-block step/degree samples,
// consistent with all feed batches accepted before the call.
func (c *coordinator) Heat() ([]rebalance.ShardHeat, error) {
	bw, err := c.barrier(false, true)
	if err != nil {
		return nil, err
	}
	if bw.err != nil {
		return nil, bw.err
	}
	out := make([]rebalance.ShardHeat, c.plan.Shards)
	for i := range out {
		out[i] = rebalance.ShardHeat{Shard: i, Steps: bw.steps[i]}
		blocks := make([]rebalance.BlockSample, 0, len(bw.blocks[i]))
		for _, b := range bw.blocks[i] {
			blocks = append(blocks, rebalance.BlockSample{Block: b.Block, Steps: b.Steps, Edges: b.Edges})
		}
		out[i].Blocks = blocks
	}
	return out, nil
}

// Migrate executes one live block migration end to end: it routes the
// offer/commit pair through the feed queue (ordering against accepted
// batches) and blocks until the recipient reports the block installed.
// Serialized by construction — the rebalancer watch loop is the only
// caller, and it migrates one block at a time, which is what keeps the
// donor-waits-for-nobody / recipient-waits-for-one-donor protocol
// trivially deadlock-free.
func (c *coordinator) Migrate(m rebalance.Move) error {
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		return ErrLiveClosed
	}
	cur := c.planNow()
	from := cur.BlockOwner(m.Block)
	if from == m.To || m.To < 0 || m.To >= c.plan.Shards {
		c.sendMu.RUnlock()
		return nil
	}
	epoch := cur.Epoch + 1
	ch := make(chan *fabric.MigrateDone, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		c.sendMu.RUnlock()
		return ErrFabricDown
	}
	c.migs[epoch] = ch
	c.mu.Unlock()
	c.feed <- coordMsg{mig: &migOp{block: m.Block, from: from, to: m.To, epoch: epoch}}
	c.sendMu.RUnlock()
	d := <-ch
	if d == nil {
		return ErrFabricDown
	}
	if d.Err != "" {
		err := errors.New(d.Err)
		c.setErr(err)
		return err
	}
	c.migrations.Add(1)
	coordMigrations.Inc()
	c.movedEdges.Add(d.Edges)
	return nil
}
