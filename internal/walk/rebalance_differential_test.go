// The rebalancing extension of the sharded differential harness: a
// *hub-skewed* growth tape concentrates degree mass and walk traffic on
// the blocks one shard owns, the heat-aware rebalancer migrates those
// blocks live — while writers feed, walkers cross shards, and the hub
// caches serve views — and afterwards the distributed state must still
// be equivalent to a sequential replay: identical live edge multiset and
// a sampling distribution a 120k-draw chi-square cannot tell apart.
//
// This is the full three-way consistency argument under test at once:
// walkers mid-hand-off across an epoch flip (re-routed, never lost, and
// a dead-end raced with extraction re-dispatches), per-source-ordered
// routed updates across the ownership flip (pre-flip updates ride the
// extracted rows, post-flip updates queue behind the recipient's
// commit), and hub-view invalidation (block views dropped at commit,
// straggler replies refused by current-owner checks). Run with -race on
// both the in-process and the TCP fabric.
package walk_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/rebalance"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	rbVerts0   = 600  // initial space → range size 150 at 4 shards
	rbVertsMax = 1200 // growth target; block 4 = [600, 750) is minted live
	rbTapeLen  = 8000
	rbWriters  = 4
	rbShards   = 4
	rbSamples  = 120000 // ≥ 1e5 chi-square draws
	// Under the race detector every Query is a serial round trip whose
	// cost the instrumentation multiplies several-fold — over loopback
	// TCP on a single-core box, 120k draws alone exceed the package
	// timeout. 3k draws per vertex keeps every expected cell count far
	// above the chi-square floor while fitting the budget.
	rbSamplesRace = 24000
)

// rbHotVertex draws from the hot set: the two blocks shard 0 owns under
// the initial plan — block 0 ([0, 150), bootstrap-time) and block 4
// ([600, 750), minted by growth). Two hot blocks rather than one so the
// planner can actually split the load (relocating a single block that
// *is* the load would be refused as pointless).
func rbHotVertex(r *xrand.RNG) graph.VertexID {
	if r.Coin(0.5) {
		return graph.VertexID(r.Intn(150))
	}
	return graph.VertexID(600 + r.Intn(150))
}

// buildHubSkewTape is buildGrowthTape with the paper's serving skew
// dialed in: three quarters of the inserts source from the hot blocks
// (and mostly land there too, so walks dwell on them), the rest spread
// over the whole growth space. Every (src,dst) pair still has at most
// one live instance, so any valid replay agrees edge-for-edge.
func buildHubSkewTape(n int, seed uint64) []graph.Update {
	r := xrand.New(seed)
	live := make([]sdPair, 0, n)
	liveAt := make(map[sdPair]int, n)
	tape := make([]graph.Update, 0, n)
	pick := func() sdPair {
		if r.Coin(0.75) {
			src := rbHotVertex(r)
			if r.Coin(0.7) {
				return sdPair{src, rbHotVertex(r)}
			}
			return sdPair{src, graph.VertexID(r.Intn(rbVertsMax))}
		}
		return sdPair{graph.VertexID(r.Intn(rbVertsMax)), graph.VertexID(r.Intn(rbVertsMax))}
	}
	for len(tape) < n {
		roll := r.Float64()
		switch {
		case roll < 0.20 && len(live) > 8:
			i := r.Intn(len(live))
			p := live[i]
			last := len(live) - 1
			live[i] = live[last]
			liveAt[live[i]] = i
			live = live[:last]
			delete(liveAt, p)
			tape = append(tape, graph.Update{Op: graph.OpDelete, Src: p.src, Dst: p.dst})
		default:
			p := pick()
			if _, ok := liveAt[p]; ok {
				continue
			}
			liveAt[p] = len(live)
			live = append(live, p)
			tape = append(tape, graph.Update{Op: graph.OpInsert, Src: p.src, Dst: p.dst, Bias: uint64(1 + r.Intn(1000))})
		}
	}
	return tape
}

// rbService is the slice of the serving surface the harness drives;
// both fabrics' services satisfy it.
type rbService interface {
	Query(start graph.VertexID, length int) ([]graph.VertexID, error)
	Feed(ups []graph.Update) error
	Sync() error
	Stats() walk.ShardedLiveStats
	LivePlan() walk.ShardPlan
	Close() error
}

// runRebalanceDifferential drives the harness against svc and returns
// the final stats; dump reads the distributed edge state back after the
// walks (before Close for the remote service, after Close for inproc —
// the caller picks).
func runRebalanceDifferential(t *testing.T, svc rbService, tape []graph.Update) walk.ShardedLiveStats {
	t.Helper()

	parts := make([][]graph.Update, rbWriters)
	for _, up := range tape {
		w := int(up.Src) % rbWriters
		parts[w] = append(parts[w], up)
	}
	var writers sync.WaitGroup
	for w := 0; w < rbWriters; w++ {
		writers.Add(1)
		go func(part []graph.Update) {
			defer writers.Done()
			const chunk = 64
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := svc.Feed(part[lo:hi]); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
		}(parts[w])
	}

	// Query walkers start (mostly) on the hot blocks while the tape
	// lands — the skewed serving load the rebalancer measures.
	done := make(chan struct{})
	var walkers sync.WaitGroup
	for q := 0; q < 4; q++ {
		walkers.Add(1)
		go func(seed uint64) {
			defer walkers.Done()
			r := xrand.New(seed)
			for i := 0; ; i++ {
				if i%64 == 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				start := graph.VertexID(r.Intn(rbVertsMax))
				if r.Coin(0.85) {
					start = rbHotVertex(r)
				}
				path, err := svc.Query(start, 16)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
			}
		}(0xBA1A + uint64(q))
	}
	writers.Wait()

	// Keep the hot traffic flowing until migrations have fired: the
	// rebalancer needs heat cycles, and the acceptance criterion is that
	// they demonstrably happen under live load.
	deadline := time.Now().Add(60 * time.Second)
	r := xrand.New(0x4EA7)
	for svc.Stats().Rebalance.Migrations == 0 {
		if time.Now().After(deadline) {
			close(done)
			walkers.Wait()
			t.Fatalf("no migration fired under hub-skewed load: stats %+v, shard steps %v",
				svc.Stats().Rebalance, svc.Stats().ShardSteps)
		}
		if _, err := svc.Query(rbHotVertex(r), 16); err != nil {
			t.Fatalf("Query while waiting for migration: %v", err)
		}
	}
	close(done)
	walkers.Wait()
	if err := svc.Sync(); err != nil {
		t.Fatalf("Sync after feed: %v", err)
	}

	st := svc.Stats()
	plan := svc.LivePlan()
	t.Logf("replayed %d updates under %d writers / %d shards; %d migrations (%d edges shipped, plan epoch %d), shard steps %v, %d transfers",
		st.Updates, rbWriters, rbShards, st.Rebalance.Migrations, st.Rebalance.MovedEdges, st.Rebalance.PlanEpoch, st.ShardSteps, st.Transfers)
	if st.Updates != int64(len(tape)) || st.Dropped != 0 {
		t.Fatalf("ingest stats %+v, want %d updates, 0 dropped", st, len(tape))
	}
	if st.Rebalance.Migrations == 0 || st.Rebalance.PlanEpoch == 0 {
		t.Fatalf("rebalancer idle: %+v", st.Rebalance)
	}
	if plan.Epoch != st.Rebalance.PlanEpoch || len(plan.Overlay) == 0 {
		t.Fatalf("live plan %+v does not reflect %d migrations", plan, st.Rebalance.Migrations)
	}
	if st.Transfers == 0 {
		t.Fatal("no cross-shard transfers — the partition topology was not exercised")
	}

	// Chi-square the serving distribution against the sequential replay
	// on the highest-degree vertices (hub-skew puts them on migrated
	// blocks, so these draws cross the moved ownership).
	seq := rbSequentialReplay(t, tape)
	type cand struct {
		u graph.VertexID
		d int
	}
	var cands []cand
	for u := 0; u < rbVertsMax; u++ {
		if d := seq.Degree(graph.VertexID(u)); d >= 4 {
			cands = append(cands, cand{graph.VertexID(u), d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
	if len(cands) > 8 {
		cands = cands[:8]
	}
	if len(cands) == 0 {
		t.Fatal("no test vertices with degree ≥ 4 — tape generator broken")
	}
	moved := 0
	for _, c := range cands {
		if _, ok := plan.Overlay[plan.BlockOf(c.u)]; ok {
			moved++
		}
	}
	t.Logf("chi-square over %d vertices, %d of them on migrated blocks", len(cands), moved)
	samples := rbSamples
	if raceDetectorEnabled {
		samples = rbSamplesRace
	}
	perVertex := samples / len(cands)
	for _, c := range cands {
		slotProbs := seq.VertexProbabilities(c.u)
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range slotProbs {
			probByDst[seq.Neighbor(c.u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		for i := 0; i < perVertex; i++ {
			path, err := svc.Query(c.u, 1)
			if err != nil {
				t.Fatalf("vertex %d: Query: %v", c.u, err)
			}
			if len(path) != 2 {
				t.Fatalf("vertex %d: degree %d but draw %d returned path %v", c.u, c.d, i, path)
			}
			slot, ok := index[path[1]]
			if !ok {
				t.Fatalf("vertex %d: sampled %d, not a live neighbor", c.u, path[1])
			}
			observed[slot]++
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("vertex %d: chi-square: %v", c.u, err)
		}
		if p < 1e-4 {
			t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — rebalanced distribution diverges from sequential replay", c.u, c.d, stat, p)
		}
	}
	return svc.Stats()
}

// rbSequentialReplay builds the single-engine ground truth.
func rbSequentialReplay(t *testing.T, tape []graph.Update) *core.Sampler {
	t.Helper()
	seq, err := core.New(rbVertsMax, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ApplyUpdatesStreaming(append([]graph.Update(nil), tape...)); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	return seq
}

// rbAssertEdgeEquality compares a distributed edge multiset against the
// sequential replay, edge for edge.
func rbAssertEdgeEquality(t *testing.T, got []sdEdge, tape []graph.Update) {
	t.Helper()
	seq := rbSequentialReplay(t, tape)
	want := appendEdges(nil, seq.Snapshot())
	sortEdges(got)
	sortEdges(want)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// rbRebalanceOptions are tuned for the harness: tight heat cycles and a
// low trigger so migrations fire within the test's traffic volume. The
// cycle length scales with the fabric — loopback TCP serves an order of
// magnitude fewer steps per unit time than the in-process channels, and
// a cycle must accumulate enough heat to clear the noise floor.
func rbRebalanceOptions(interval time.Duration, minCycleSteps int64) rebalance.Options {
	return rebalance.Options{
		On:               true,
		Interval:         interval,
		Imbalance:        1.15,
		MinCycleSteps:    minCycleSteps,
		MaxMovesPerCycle: 2,
		Cooldown:         2,
	}
}

// TestRebalanceLiveDifferentialInproc is the acceptance harness over the
// in-process fabric.
func TestRebalanceLiveDifferentialInproc(t *testing.T) {
	tape := buildHubSkewTape(rbTapeLen, 0x5EED)
	plan := walk.NewShardPlan(rbVerts0, rbShards)
	engines, raw := newShardEngines(t, plan, rbVerts0)
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: 2,
		WalkLength:      16,
		Seed:            0xFEED,
		Rebalance:       rbRebalanceOptions(15*time.Millisecond, 128),
	})
	if err != nil {
		t.Fatal(err)
	}
	runRebalanceDifferential(t, svc, tape)
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Edge-multiset equality: migrations moved rows between engines, but
	// the union must be exactly the sequential replay; every engine's
	// invariants hold, and at least one grew past the initial space.
	var got []sdEdge
	grew := false
	for i, e := range raw {
		if e.NumVertices() > rbVerts0 {
			grew = true
		}
		e.Quiesce(func(s *core.Sampler) {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("shard %d invariants: %v", i, err)
			}
			got = appendEdges(got, s.Snapshot())
		})
	}
	if !grew {
		t.Fatal("no shard engine grew beyond the initial space — tape not growth-inducing")
	}
	rbAssertEdgeEquality(t, got, tape)
}

// TestRebalanceLiveDifferentialTCP is the same harness over the tcpgob
// fabric: the shard nodes run behind real loopback sockets (the frames,
// handshake, and peer streams `bingowalk -shard-serve` daemons speak),
// and the migration protocol's offer/block/commit cross the wire.
func TestRebalanceLiveDifferentialTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback daemons in -short mode")
	}
	tape := buildHubSkewTape(rbTapeLen, 0x5EED)
	plan := walk.NewShardPlan(rbVerts0, rbShards)

	listeners := make([]*tcpgob.Listener, rbShards)
	addrs := make([]string, rbShards)
	for i := 0; i < rbShards; i++ {
		l, err := tcpgob.Listen("127.0.0.1:0", i, rbShards)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	var nodes sync.WaitGroup
	for i := 0; i < rbShards; i++ {
		nodes.Add(1)
		go func(i int) {
			defer nodes.Done()
			defer listeners[i].Close()
			sc, hello, err := listeners[i].Accept()
			if err != nil {
				return
			}
			s, err := core.New(hello.NumVertices, core.DefaultConfig())
			if err != nil {
				sc.Close()
				return
			}
			e := concurrent.Wrap(s, concurrent.Config{})
			nodePlan := walk.ShardPlan{
				Shards: hello.Shards, RangeSize: hello.RangeSize,
				Epoch: hello.PlanEpoch, Overlay: hello.Overlay,
			}
			if _, err := walk.RunShardNode(e, nodePlan, i, sc, 2, hello.Cache, walk.KernelAuto); err != nil {
				t.Errorf("shard %d: %v", i, err)
			}
		}(i)
	}
	port, err := tcpgob.Dial(addrs, fabric.Hello{
		RangeSize:   plan.RangeSize,
		NumVertices: rbVerts0,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := walk.NewRemoteService(port, plan, rbVerts0, walk.ShardedLiveConfig{
		WalkLength: 16,
		Seed:       0xFEED,
		Rebalance:  rbRebalanceOptions(250*time.Millisecond, 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	runRebalanceDifferential(t, svc, tape)

	// Edge read-back through the dump barrier *before* Close: the
	// daemons' engines are reachable only through the fabric.
	perShard, err := svc.DumpEdges()
	if err != nil {
		t.Fatalf("DumpEdges: %v", err)
	}
	if svc.NumVertices() <= rbVerts0 {
		t.Fatal("no daemon grew beyond the initial space — tape not growth-inducing")
	}
	var got []sdEdge
	for _, edges := range perShard {
		for _, ed := range edges {
			got = append(got, sdEdge{src: ed.Src, dst: ed.Dst, bias: ed.Bias})
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	nodes.Wait()
	rbAssertEdgeEquality(t, got, tape)
}
