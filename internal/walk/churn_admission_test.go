package walk

import (
	"testing"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// TestRemoteViewsChurnBackoff drives the fabric-side cache with a churn
// tape — every installed view is invalidated by a watermark before it
// serves a single hop — and asserts the admission back-off caps the
// request traffic at a small fraction of the no-backoff baseline (one
// request per RequestAfter crossings), which is the mechanism that
// erases the measured hub-targeted-churn regression.
func TestRemoteViewsChurnBackoff(t *testing.T) {
	rv := newRemoteViews(2, 16, 2)
	const tape = 2000
	requests := 0
	wm := int64(0)
	for i := 0; i < tape; i++ {
		if rv.noteCrossing(7) {
			requests++
			if !rv.install(testReply(7, 1, wm, true)) {
				t.Fatalf("crossing %d: fresh install rejected", i)
			}
			// Hub-targeted write churn: the view dies before any hit.
			wm++
			rv.advance([]int64{0, wm})
		}
	}
	// Without back-off: tape/RequestAfter = 1000 requests. With strikes
	// doubling the threshold up to the cap: 2+4+…+2<<6, then one per
	// 128 crossings — a couple dozen.
	if requests >= tape/10 {
		t.Fatalf("%d view requests under churn; back-off absent (baseline %d)", requests, tape/2)
	}
	if requests < 3 {
		t.Fatalf("only %d requests — probing stopped entirely", requests)
	}
	if rv.strikes[7] != churnMaxStrikes {
		t.Fatalf("strikes %d, want cap %d", rv.strikes[7], churnMaxStrikes)
	}

	// Redemption: a view that serves its keep clears the slate.
	for !rv.noteCrossing(7) {
	}
	if !rv.install(testReply(7, 1, wm, true)) {
		t.Fatal("reinstall rejected")
	}
	for h := 0; h < churnYoungHits; h++ {
		if vw, _ := rv.get(7); vw == nil {
			t.Fatal("long-lived view vanished")
		}
	}
	wm++
	rv.advance([]int64{0, wm})
	if _, ok := rv.strikes[7]; ok {
		t.Fatal("a long-lived view did not clear its vertex's strikes")
	}
	// Back to the base threshold: the second crossing requests again.
	rv.noteCrossing(7)
	if !rv.noteCrossing(7) {
		t.Fatal("request threshold did not reset after redemption")
	}
}

// TestRemoteViewsDropBlock pins the migration hook: committing a block
// move purges that block's views, crossing counts, in-flight markers,
// and negative entries — and installs from the block's old owner are
// refused once the ownership function says otherwise.
func TestRemoteViewsDropBlock(t *testing.T) {
	rv := newRemoteViews(2, 16, 2)
	owner := 1
	rv.ownerOf = func(v graph.VertexID) int { return owner }

	rv.noteCrossing(9)
	rv.noteCrossing(9)
	if !rv.install(testReply(9, 1, 0, true)) {
		t.Fatal("install failed")
	}
	rv.install(testReply(12, 1, 0, false)) // negative entry in the same block
	if vw, _ := rv.get(9); vw == nil {
		t.Fatal("view missing before drop")
	}
	// Block of vertex 9 with rangeSize 8 is block 1 = [8, 16).
	rv.dropBlock(8, 1)
	if vw, stale := rv.get(9); vw != nil || stale {
		t.Fatalf("view survived dropBlock: vw=%v stale=%v", vw, stale)
	}
	if rv.notHub[12] {
		t.Fatal("negative entry survived dropBlock")
	}
	// Ownership moved to shard 0: a straggler reply from shard 1 must be
	// refused even with a fresh stamp.
	owner = 0
	if rv.install(testReply(9, 1, 100, true)) {
		t.Fatal("reply from the block's old owner installed")
	}
	if !rv.install(testReply(9, 0, 0, true)) {
		t.Fatal("reply from the new owner rejected")
	}
}

// churnEngine is a minimal ViewSampler + Engine whose every vertex is a
// hub and whose epoch the test bumps to simulate writer churn.
type churnEngine struct {
	epoch uint64
}

func (f *churnEngine) Sample(u graph.VertexID, r *xrand.RNG) (graph.VertexID, bool) { return u, true }
func (f *churnEngine) Degree(graph.VertexID) int                                    { return 64 }
func (f *churnEngine) HasEdge(u, dst graph.VertexID) bool                           { return false }
func (f *churnEngine) NumVertices() int                                             { return 1 }
func (f *churnEngine) ViewOf(u graph.VertexID) *core.VertexView {
	return &core.VertexView{Vertex: u, Epoch: f.epoch}
}
func (f *churnEngine) ValidateView(vw *core.VertexView) bool { return vw.Epoch == f.epoch }
func (f *churnEngine) SampleOrView(u graph.VertexID, minDegree int, r *xrand.RNG) (graph.VertexID, bool, *core.VertexView) {
	return u, true, &core.VertexView{Vertex: u, Epoch: f.epoch}
}

// TestViewCacheChurnBackoff drives a walker's local view LRU with the
// same churn tape shape: the cached vertex's stripe mutates between
// every pair of hops, so every admitted view is found stale on its next
// use. The back-off must collapse the admit/stale cycle to a trickle
// while still sampling correctly, and a stable stretch must clear the
// strikes.
func TestViewCacheChurnBackoff(t *testing.T) {
	ve := &churnEngine{}
	c := newViewCache(8, 1)
	r := xrand.New(1)
	const tape = 1000
	for i := 0; i < tape; i++ {
		if _, ok := c.sample(ve, ve, 5, r); !ok {
			t.Fatal("sample failed")
		}
		ve.epoch++ // writer touches the vertex after every hop
	}
	// Every stale observation is one wasted admission; without back-off
	// there is one per tape step.
	if c.stale >= tape/10 {
		t.Fatalf("%d stale drops under churn; admission back-off absent", c.stale)
	}
	if c.churn[5].strikes != churnMaxStrikes {
		t.Fatalf("strikes %d, want cap %d", c.churn[5].strikes, churnMaxStrikes)
	}

	// A stable stretch: the view gets admitted eventually, serves well
	// past churnYoungHits, and the next (single) invalidation clears the
	// strikes instead of deepening them.
	for i := 0; i < 4096; i++ {
		c.sample(ve, ve, 5, r)
	}
	if c.hits == 0 {
		t.Fatal("no lock-free hits in the stable stretch")
	}
	ve.epoch++
	c.sample(ve, ve, 5, r) // observes the stale view, notes a seasoned death
	if _, ok := c.churn[5]; ok {
		t.Fatal("a long-lived view did not clear its vertex's strikes")
	}
}
