// Package walk implements the random-walk engine and the paper's four
// application kernels (§6): biased DeepWalk, node2vec, personalized
// PageRank (PPR), and simple sampling. Walks run step by step — each step
// samples the next vertex from the underlying engine — and are parallelized
// across walkers with one deterministic RNG stream per walker, the CPU
// analogue of the paper's massively parallel GPU walkers.
//
// The package is engine-agnostic: Bingo (internal/core) and all baselines
// (internal/baseline) implement the same Engine/Dynamic interfaces, which
// is what makes the Table 3 comparison apples-to-apples.
package walk

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Engine is the sampling interface every system under test implements.
type Engine interface {
	// Sample draws a neighbor of u with probability proportional to edge
	// bias. ok is false when u has no sampleable out-edge.
	Sample(u graph.VertexID, r *xrand.RNG) (v graph.VertexID, ok bool)
	// Degree returns u's out-degree.
	Degree(u graph.VertexID) int
	// HasEdge reports whether edge u→dst is live (used by node2vec's
	// second-order rejection test).
	HasEdge(u, dst graph.VertexID) bool
	// NumVertices returns the vertex-ID space size.
	NumVertices() int
}

// Dynamic extends Engine with the update operations the evaluation drives.
type Dynamic interface {
	Engine
	// InsertEdge adds u→dst with integer bias plus fractional part.
	InsertEdge(u, dst graph.VertexID, bias uint64, fbias float64) error
	// DeleteEdge removes one live instance of u→dst.
	DeleteEdge(u, dst graph.VertexID) error
	// ApplyUpdates ingests a batch (engines free to process it their
	// preferred way: incrementally, or rebuild-per-round like the
	// adapted static systems in §6.2).
	ApplyUpdates(ups []graph.Update) error
	// Footprint returns the engine's memory consumption in bytes.
	Footprint() int64
}

// Config parameterizes a walk run.
type Config struct {
	// Length is the walk length (paper default 80). For PPR it bounds
	// the maximum length; termination is geometric with TermProb.
	Length int
	// Starts are the start vertices; nil means every vertex (the paper
	// initializes "the vertex count number of random walkers").
	Starts []graph.VertexID
	// Workers bounds parallelism (0 = GOMAXPROCS via the caller's
	// runtime; we treat 0 as 1 worker per 4096 walkers capped at 16).
	Workers int
	// Seed makes the run reproducible.
	Seed uint64
	// TermProb is PPR's per-step termination probability (default 1/80).
	TermProb float64
	// P and Q are node2vec's return/in-out hyper-parameters (paper
	// defaults 0.5 and 2).
	P, Q float64
	// CountVisits enables per-vertex visit counting (needed by PPR-style
	// frequency queries; costs one atomic add per step).
	CountVisits bool
	// Kernel selects the stepping mode for kernels with a frontier
	// implementation (currently DeepWalk): sparse per-walker stepping,
	// dense per-vertex batch draws, or auto density switching (the zero
	// value). Engines without batch draws always step sparse.
	Kernel KernelMode
	// Cache optionally enables the frontier kernel's hub-view LRU with
	// fabric.CacheSpec semantics (nil = no cache). It is nil by default
	// on purpose: without views, dense stepping consumes each walker's
	// RNG stream exactly as sparse stepping does, so bulk results stay
	// bit-identical across kernel modes; hub views trade that for
	// lock-free hub hops (distributionally exact, not path-identical).
	Cache *fabric.CacheSpec
}

func (c Config) withDefaults(numVertices int) Config {
	if c.Length <= 0 {
		c.Length = 80
	}
	if c.TermProb <= 0 {
		c.TermProb = 1.0 / 80
	}
	if c.P <= 0 {
		c.P = 0.5
	}
	if c.Q <= 0 {
		c.Q = 2
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Result summarizes a walk run.
type Result struct {
	// Walkers is the number of walks performed.
	Walkers int
	// Steps is the total number of sampling steps taken.
	Steps int64
	// Visits[v] counts arrivals at v across all walks (nil unless
	// Config.CountVisits).
	Visits []int64
}

// starts materializes the configured start set.
func startsOf(e Engine, cfg Config) []graph.VertexID {
	if cfg.Starts != nil {
		return cfg.Starts
	}
	all := make([]graph.VertexID, e.NumVertices())
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	return all
}

// runParallel fans walkers out over workers. Each walker gets stream
// master.Split(walkerIndex), so results are independent of worker count.
func runParallel(e Engine, cfg Config, walk func(start graph.VertexID, r *xrand.RNG, visits []int64) int64) Result {
	cfg = cfg.withDefaults(e.NumVertices())
	starts := startsOf(e, cfg)
	var visits []int64
	if cfg.CountVisits {
		visits = make([]int64, e.NumVertices())
	}
	master := xrand.New(cfg.Seed)
	res := Result{Walkers: len(starts), Visits: visits}

	if cfg.Workers <= 1 || len(starts) < 2*cfg.Workers {
		var steps int64
		for i, s := range starts {
			steps += walk(s, master.Split(uint64(i)), visits)
		}
		res.Steps = steps
		return res
	}

	var wg sync.WaitGroup
	var steps atomic.Int64
	chunk := (len(starts) + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo := w * chunk
		if lo >= len(starts) {
			break
		}
		hi := lo + chunk
		if hi > len(starts) {
			hi = len(starts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var local int64
			for i := lo; i < hi; i++ {
				local += walk(starts[i], master.Split(uint64(i)), visits)
			}
			steps.Add(local)
		}(lo, hi)
	}
	wg.Wait()
	res.Steps = steps.Load()
	return res
}

func bump(visits []int64, v graph.VertexID) {
	if visits != nil {
		atomic.AddInt64(&visits[v], 1)
	}
}

// DeepWalk runs first-order biased random walks of fixed length from every
// start (paper §2.2: "walkers stop when they reach the given path length").
// Over engines with batch draws it runs on the frontier stepping kernel —
// walkers advance in lockstep and co-located walkers draw in per-vertex
// batches — unless Config.Kernel forces sparse. Per-walker RNG streams are
// preserved in every mode, so results are bit-identical across modes as
// long as no hub-view cache is configured.
func DeepWalk(e Engine, cfg Config) Result {
	cfg = cfg.withDefaults(e.NumVertices())
	if cfg.Kernel != KernelSparse {
		if _, ok := e.(BatchSampler); ok {
			return deepWalkFrontier(e, cfg)
		}
	}
	return runParallel(e, cfg, func(start graph.VertexID, r *xrand.RNG, visits []int64) int64 {
		cur := start
		bump(visits, cur)
		var steps int64
		for hop := 0; hop < cfg.Length; hop++ {
			next, ok := e.Sample(cur, r)
			if !ok {
				break
			}
			steps++
			cur = next
			bump(visits, cur)
		}
		return steps
	})
}

// deepWalkFrontier is DeepWalk on the frontier kernel. Each worker owns a
// contiguous walker range and steps it as one frontier, refilling retired
// slots from the range so the frontier stays dense; walker i draws from
// stream master.Split(i) exactly as the sparse runner assigns them.
func deepWalkFrontier(e Engine, cfg Config) Result {
	starts := startsOf(e, cfg)
	var visits []int64
	if cfg.CountVisits {
		visits = make([]int64, e.NumVertices())
	}
	master := xrand.New(cfg.Seed)
	res := Result{Walkers: len(starts), Visits: visits}
	spec := fabric.CacheSpec{Off: true}
	if cfg.Cache != nil {
		spec = *cfg.Cache
	}

	workers := cfg.Workers
	if workers <= 1 || len(starts) < 2*workers {
		res.Steps = deepWalkChunk(e, cfg, spec, starts, 0, len(starts), master, visits)
		return res
	}
	var wg sync.WaitGroup
	var steps atomic.Int64
	chunk := (len(starts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(starts) {
			break
		}
		hi := lo + chunk
		if hi > len(starts) {
			hi = len(starts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			steps.Add(deepWalkChunk(e, cfg, spec, starts, lo, hi, master, visits))
		}(lo, hi)
	}
	wg.Wait()
	res.Steps = steps.Load()
	return res
}

// deepWalkChunk steps walkers [lo, hi) of starts through one frontier.
func deepWalkChunk(e Engine, cfg Config, spec fabric.CacheSpec, starts []graph.VertexID, lo, hi int, master *xrand.RNG, visits []int64) int64 {
	k := newStepKernel(e, cfg.Kernel, spec)
	capacity := hi - lo
	if capacity > kernelBatch {
		capacity = kernelBatch
	}
	f := getFrontier(capacity)
	defer putFrontier(f)
	hops := make([]int, capacity)
	var steps int64
	next := lo // next unlaunched walker
	n := 0     // live slots
	for {
		for n < capacity && next < hi {
			s := starts[next]
			f.cur[n] = s
			master.SplitInto(uint64(next), f.slotRNG(n))
			hops[n] = 0
			bump(visits, s)
			next++
			n++
		}
		if n == 0 {
			return steps
		}
		f.n = n
		k.stepBatch(f)
		for i := 0; i < n; {
			if f.ok[i] {
				steps++
				hops[i]++
				f.cur[i] = f.next[i]
				bump(visits, f.cur[i])
				if hops[i] < cfg.Length {
					i++
					continue
				}
			}
			n-- // retire slot i (dead end or full length)
			f.swap(i, n)
			hops[i], hops[n] = hops[n], hops[i]
		}
	}
}

// node2vecRejectionCap bounds second-order rejection rounds before falling
// back to accepting the static proposal; acceptance is at least
// min(1/p,1,1/q)/max(1/p,1,1/q) per round, so the cap is effectively
// unreachable and exists to bound the tail deterministically.
const node2vecRejectionCap = 256

// Node2Vec runs second-order walks using the KnightKing approach the paper
// adopts (§7.3): sample a candidate from the static distribution, then
// accept with probability f(prev, v)/max(f), where f is Equation 1.
func Node2Vec(e Engine, cfg Config) Result {
	cfg = cfg.withDefaults(e.NumVertices())
	invP, invQ := 1/cfg.P, 1/cfg.Q
	maxF := invP
	if 1 > maxF {
		maxF = 1
	}
	if invQ > maxF {
		maxF = invQ
	}
	return runParallel(e, cfg, func(start graph.VertexID, r *xrand.RNG, visits []int64) int64 {
		prev := graph.VertexID(0)
		hasPrev := false
		cur := start
		bump(visits, cur)
		var steps int64
		for hop := 0; hop < cfg.Length; hop++ {
			var next graph.VertexID
			if !hasPrev {
				v, ok := e.Sample(cur, r)
				if !ok {
					break
				}
				next = v
			} else {
				accepted := false
				for round := 0; round < node2vecRejectionCap; round++ {
					v, ok := e.Sample(cur, r)
					if !ok {
						return steps
					}
					f := invQ // distance 2 by default
					if v == prev {
						f = invP // distance 0: backtrack
					} else if e.HasEdge(prev, v) || e.HasEdge(v, prev) {
						f = 1 // distance 1
					}
					if r.Float64()*maxF < f {
						next = v
						accepted = true
						break
					}
				}
				if !accepted {
					v, ok := e.Sample(cur, r)
					if !ok {
						return steps
					}
					next = v
				}
			}
			steps++
			prev, hasPrev = cur, true
			cur = next
			bump(visits, cur)
		}
		return steps
	})
}

// PPR runs personalized-PageRank walks: from each start, walk until a
// geometric termination coin (probability TermProb per step) or a dead end;
// the visit frequencies estimate PPR values (paper §1). Length caps the
// walk as a safety bound at 64× the expected length.
func PPR(e Engine, cfg Config) Result {
	cfg = cfg.withDefaults(e.NumVertices())
	maxLen := cfg.Length * 64
	return runParallel(e, cfg, func(start graph.VertexID, r *xrand.RNG, visits []int64) int64 {
		cur := start
		bump(visits, cur)
		var steps int64
		for int(steps) < maxLen {
			if r.Float64() < cfg.TermProb {
				break
			}
			next, ok := e.Sample(cur, r)
			if !ok {
				break
			}
			steps++
			cur = next
			bump(visits, cur)
		}
		return steps
	})
}

// SimpleSampling is the paper's random_walk_simple_sampling kernel: Length
// independent one-hop samples from each start. It isolates raw sampling
// throughput (Figure 16(b)).
func SimpleSampling(e Engine, cfg Config) Result {
	cfg = cfg.withDefaults(e.NumVertices())
	return runParallel(e, cfg, func(start graph.VertexID, r *xrand.RNG, visits []int64) int64 {
		var steps int64
		for i := 0; i < cfg.Length; i++ {
			v, ok := e.Sample(start, r)
			if !ok {
				break
			}
			steps++
			bump(visits, v)
		}
		return steps
	})
}

// DeepWalkPaths runs DeepWalk and streams every completed path to emit.
// The slice passed to emit is reused between calls; copy it to retain.
// Paths are what DeepWalk feeds to SkipGram training (paper §2.2: "the
// paths are treated as sentences"). Emission is sequential even when
// sampling is parallel would complicate ordering guarantees, so this
// kernel runs single-threaded; use DeepWalk for throughput measurements.
func DeepWalkPaths(e Engine, cfg Config, emit func(path []graph.VertexID)) Result {
	cfg = cfg.withDefaults(e.NumVertices())
	starts := startsOf(e, cfg)
	master := xrand.New(cfg.Seed)
	res := Result{Walkers: len(starts)}
	buf := make([]graph.VertexID, 0, cfg.Length+1)
	for i, start := range starts {
		buf = walkPath(e, start, cfg.Length, master.Split(uint64(i)), buf)
		res.Steps += int64(len(buf) - 1)
		emit(buf)
	}
	return res
}

// App identifies one of the paper's application kernels.
type App uint8

const (
	// AppDeepWalk is biased DeepWalk.
	AppDeepWalk App = iota
	// AppNode2Vec is second-order node2vec.
	AppNode2Vec
	// AppPPR is personalized PageRank.
	AppPPR
	// AppSimple is the simple-sampling kernel.
	AppSimple
)

func (a App) String() string {
	switch a {
	case AppDeepWalk:
		return "DeepWalk"
	case AppNode2Vec:
		return "node2vec"
	case AppPPR:
		return "PPR"
	case AppSimple:
		return "simple"
	default:
		return fmt.Sprintf("App(%d)", uint8(a))
	}
}

// Run dispatches to the kernel selected by app.
func Run(app App, e Engine, cfg Config) Result {
	switch app {
	case AppDeepWalk:
		return DeepWalk(e, cfg)
	case AppNode2Vec:
		return Node2Vec(e, cfg)
	case AppPPR:
		return PPR(e, cfg)
	case AppSimple:
		return SimpleSampling(e, cfg)
	default:
		panic(fmt.Sprintf("walk: unknown app %v", app))
	}
}
