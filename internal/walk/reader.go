package walk

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Reader-tier instrumentation: end-to-end query latency plus the
// broadcast-fold and cache-hit tallies that show how much serving stays
// reader-local versus funneling into the shard set.
var (
	readerQueryNs    = obs.H("bingo_query_seconds", "svc", "reader")
	readerBroadcasts = obs.C("bingo_reader_broadcast_folds_total")
	readerPlanFlips  = obs.C("bingo_reader_plan_flips_total")
	readerLocalHits  = obs.C("bingo_reader_cache_hits_total")
	readerLaunches   = obs.C("bingo_reader_launches_total")
)

// ErrNoWriteSession is returned when a read-coordinator attaches to a
// fabric whose write session has already ended (or never started): a
// reader serves against state the write-coordinator owns, so without a
// write session there is nothing to read.
var ErrNoWriteSession = errors.New("walk: no live write session on the fabric")

// ReaderConfig parameterizes a ReaderService.
type ReaderConfig struct {
	// WalkLength is the default walk length for Query calls that pass
	// length <= 0 (default 80).
	WalkLength int
	// Seed makes the reader's per-query RNG streams reproducible.
	Seed uint64
	// Cache configures the reader's hub-view cache (zero value = enabled
	// with defaults; Cache.Off disables reader-local hop serving).
	Cache fabric.CacheSpec
}

func (c ReaderConfig) withDefaults() ReaderConfig {
	if c.WalkLength <= 0 {
		c.WalkLength = 80
	}
	return c
}

// ReaderService is a read-coordinator: a query front end attached to a
// running shard set that the write-coordinator owns. It launches walkers
// and view requests through a fabric.ReadPort (which stamps the reader's
// session nonce so shards route retires and replies back here) and keeps
// its routing valid by consuming the write-coordinator's broadcast
// stream — plan epoch, ownership overlay, dead-mask, routed-update
// watermarks, applied stamp. It never touches ingest: Feed, Sync,
// rebalancing, and credit flow stay with the write session.
//
// Scaling model: N readers share one shard set. Each serves walk hops
// from its own hub-view cache when a valid cached view covers the
// walker's position (the same watermark-validated remoteViews layer the
// shard nodes use peer-to-peer), and otherwise launches the remainder of
// the walk into the shard set. Hot hub traffic therefore fans out across
// reader processes instead of funneling through the one coordinator —
// aggregate walks/s grows with reader count at fixed shard count.
//
// Consistency: cached views are validated against the broadcast
// watermark vector exactly as shard nodes validate against the
// piggybacked ingest vector. Watermarks are *routed* counts, which only
// run ahead of owners' *applied* counts, so validation drops views
// early, never keeps them late; a plan-epoch or dead-mask flip drops the
// whole cache (conservative, same as the shard-side failover rule).
// AppliedStamp/WaitApplied surface the broadcast applied stamp as the
// reader's bounded-staleness evidence: after the writer's Sync returns,
// the completion broadcast carries a stamp covering everything fed
// before it, and a reader past that stamp serves no older state.
type ReaderService struct {
	port   fabric.ReadPort
	shards int
	cfg    ReaderConfig

	planv  atomic.Pointer[ShardPlan]
	master *xrand.RNG // Split-only after construction (reads, no state advance)
	idSeq  atomic.Uint64

	rv      *remoteViews
	cacheOn bool

	// mu guards the pending-retire callbacks and the dead flag that
	// fences new registrations once the event stream has ended.
	mu      sync.Mutex
	dead    bool
	pending map[uint64]func(*fabric.Walker)

	// lastSeq is the newest broadcast sequence applied (event-loop
	// writes; atomic for Stats).
	lastSeq atomic.Uint64

	// applied is the newest broadcast applied stamp; appliedCond wakes
	// WaitApplied callers when it advances (or the stream dies).
	appliedMu   sync.Mutex
	appliedCond *sync.Cond
	applied     int64
	appliedEnd  bool

	verts atomic.Int64

	queries, steps, transfers         atomic.Int64
	localHits, viewReqs, launches     atomic.Int64
	planFlips, broadcasts, relaunched atomic.Int64

	evloop    sync.WaitGroup
	closeOnce sync.Once
}

// ReaderStats snapshots a read-coordinator's activity.
type ReaderStats struct {
	// Queries and Steps count completed Query walks and their hops
	// (reader-served and shard-served alike); Transfers the cross-shard
	// hand-offs inside shard-served segments.
	Queries, Steps, Transfers int64
	// LocalHits counts hops served from the reader's own hub-view cache
	// (no shard round trip at all); Launches counts walker launches into
	// the shard set; ViewRequests the hub views requested from owners.
	LocalHits, Launches, ViewRequests int64
	// CachedViews is the current hub-view cache population.
	CachedViews int
	// PlanEpoch is the reader's view of the live plan version;
	// Broadcasts the number applied; PlanFlips how many changed the
	// epoch or dead-mask (each flip drops the view cache).
	PlanEpoch  uint64
	Broadcasts int64
	PlanFlips  int64
	// Applied is the newest broadcast applied stamp.
	Applied int64
}

// NewReaderService attaches a read-coordinator to the given read port.
// It blocks until the write session's first broadcast arrives (both
// transports deliver a cached one at attach time) and fails with
// ErrNoWriteSession if the event stream ends first.
func NewReaderService(port fabric.ReadPort, cfg ReaderConfig) (*ReaderService, error) {
	cfg = cfg.withDefaults()
	r := &ReaderService{
		port:    port,
		shards:  port.Shards(),
		cfg:     cfg,
		master:  xrand.New(cfg.Seed),
		pending: map[uint64]func(*fabric.Walker){},
		cacheOn: !cfg.Cache.Off,
	}
	r.appliedCond = sync.NewCond(&r.appliedMu)
	r.rv = newRemoteViews(r.shards, cfg.Cache.RemoteSize, cfg.Cache.RequestAfter)
	r.rv.ownerOf = func(v graph.VertexID) int { return r.planNow().Owner(v) }
	base := ShardPlan{Shards: r.shards, RangeSize: 1}
	r.planv.Store(&base)
	// The write-coordinator's newest broadcast is cached transport-side
	// and delivered at attach; consume events until it lands so routing
	// is valid before the first Query.
	for {
		ev, ok := port.NextEvent()
		if !ok {
			port.Close()
			return nil, ErrNoWriteSession
		}
		if ev.Kind == fabric.EvBroadcast && ev.Bcast != nil {
			r.applyBroadcast(ev.Bcast)
			break
		}
	}
	obs.Log.Record(obs.EvReaderAttach, -1, "read-coordinator attached")
	r.evloop.Add(1)
	go r.eventLoop()
	return r, nil
}

// planNow returns the reader's view of the live ownership plan.
func (r *ReaderService) planNow() ShardPlan { return *r.planv.Load() }

// NumVertices returns the reader's view of the vertex-space bound (from
// the broadcast stream; the space grows live under the writer's feed).
func (r *ReaderService) NumVertices() int { return int(r.verts.Load()) }

// AppliedStamp returns the newest applied-update stamp the broadcast
// stream has delivered — how much ingest the reader's serving is
// guaranteed to reflect (bounded staleness, monotonic).
func (r *ReaderService) AppliedStamp() int64 {
	r.appliedMu.Lock()
	defer r.appliedMu.Unlock()
	return r.applied
}

// WaitApplied blocks until the reader's applied stamp reaches stamp —
// typically the write side's AppliedStamp() after a Sync, making
// "everything I fed before the Sync" visible through this reader. It
// returns ErrFabricDown if the event stream ends first.
func (r *ReaderService) WaitApplied(stamp int64) error {
	r.appliedMu.Lock()
	defer r.appliedMu.Unlock()
	for r.applied < stamp && !r.appliedEnd {
		r.appliedCond.Wait()
	}
	if r.applied >= stamp {
		return nil
	}
	return ErrFabricDown
}

// eventLoop consumes retires, view replies, and broadcasts until the
// write session (or this reader's port) closes, then fails whatever is
// still pending.
func (r *ReaderService) eventLoop() {
	defer r.evloop.Done()
	for {
		ev, ok := r.port.NextEvent()
		if !ok {
			break
		}
		switch ev.Kind {
		case fabric.EvRetire:
			r.onRetire(ev.Walker)
		case fabric.EvBroadcast:
			r.applyBroadcast(ev.Bcast)
		case fabric.EvView:
			if ev.Rep != nil {
				r.rv.install(ev.Rep)
			}
		}
	}
	r.failPending()
}

// applyBroadcast folds one write-coordinator broadcast in. Broadcasts
// are full-state and idempotent: applied iff not behind the newest seen
// (duplicated per-daemon delivery and cross-link reordering are both
// harmless). An epoch or dead-mask flip drops the whole view cache —
// the conservative invalidation matching the shard nodes' failover rule;
// migrations are additionally covered by the watermark advance.
func (r *ReaderService) applyBroadcast(b *fabric.Broadcast) {
	if b == nil || b.Seq < r.lastSeq.Load() {
		return
	}
	r.lastSeq.Store(b.Seq)
	r.broadcasts.Add(1)
	readerBroadcasts.Inc()
	old := r.planNow()
	next := ShardPlan{
		Shards:    r.shards,
		RangeSize: b.RangeSize,
		Epoch:     b.Epoch,
		Overlay:   b.Overlay, // immutable by the Broadcast contract
		Replicas:  b.Replicas,
		DeadMask:  b.DeadMask,
	}
	if next.RangeSize <= 0 {
		next.RangeSize = old.RangeSize
	}
	r.planv.Store(&next)
	if next.Epoch != old.Epoch || next.DeadMask != old.DeadMask {
		r.planFlips.Add(1)
		readerPlanFlips.Inc()
		r.rv.dropAll()
	}
	r.rv.advance(b.Watermarks)
	if n := int64(b.Vertices); n > r.verts.Load() {
		r.verts.Store(n)
	}
	r.appliedMu.Lock()
	if b.Applied > r.applied {
		r.applied = b.Applied
		r.appliedCond.Broadcast()
	}
	r.appliedMu.Unlock()
}

// register installs a retire callback for walker id.
func (r *ReaderService) register(id uint64, cb func(*fabric.Walker)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return ErrFabricDown
	}
	r.pending[id] = cb
	return nil
}

// resolve removes and returns walker id's callback (nil if already
// resolved — duplicate retires after a relaunch resolve harmlessly).
func (r *ReaderService) resolve(id uint64) func(*fabric.Walker) {
	r.mu.Lock()
	cb := r.pending[id]
	delete(r.pending, id)
	r.mu.Unlock()
	return cb
}

func (r *ReaderService) onRetire(w *fabric.Walker) {
	if w == nil {
		return
	}
	if w.Failed && r.planNow().Replicas > 1 && w.Reroutes < maxWalkerReroutes {
		// A hand-off hit a dead link mid-walk. The retire carries the
		// walker's exact state; continue it on whatever replica the
		// flipped plan names instead of failing the caller.
		r.mu.Lock()
		still := r.pending[w.ID] != nil
		r.mu.Unlock()
		if still {
			w.Failed = false
			w.Reroutes++
			r.relaunched.Add(1)
			go r.relaunchWalker(w)
			return
		}
	}
	if cb := r.resolve(w.ID); cb != nil {
		cb(w)
	}
}

// relaunchWalker retries launching toward the walker's vertex's current
// owner — the broadcast carrying the plan flip races the launch, so
// early attempts may still name the dead shard.
func (r *ReaderService) relaunchWalker(w *fabric.Walker) {
	for i := 0; i < 50; i++ {
		if err := r.port.LaunchWalker(r.planNow().Owner(w.Cur), w); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	w.Failed = true
	w.Reroutes = maxWalkerReroutes
	r.onRetire(w)
}

// failPending unblocks every caller still waiting when the event stream
// ends, and fences later registrations.
func (r *ReaderService) failPending() {
	r.mu.Lock()
	r.dead = true
	pend := r.pending
	r.pending = map[uint64]func(*fabric.Walker){}
	r.mu.Unlock()
	for _, cb := range pend {
		cb(nil)
	}
	r.appliedMu.Lock()
	r.appliedEnd = true
	r.appliedCond.Broadcast()
	r.appliedMu.Unlock()
}

// maybeRequestView asks u's owner for its hub view when the crossing
// counter says the traffic warrants it (same churn-aware admission the
// shard nodes use).
func (r *ReaderService) maybeRequestView(u graph.VertexID) {
	if !r.cacheOn || !r.rv.noteCrossing(u) {
		return
	}
	r.viewReqs.Add(1)
	rq := &fabric.ViewRequest{Vertex: u}
	if err := r.port.RequestView(r.planNow().Owner(u), rq); err != nil {
		r.rv.clearInflight(u)
	}
}

// Query walks from start for up to length steps (<= 0 selects the
// configured default) and returns the visited path, start included.
// Hops are served from the reader's own hub-view cache while a valid
// cached view covers the walker's position; the remainder (if any) is
// launched into the shard set and the retire completes the path.
func (r *ReaderService) Query(start graph.VertexID, length int) ([]graph.VertexID, error) {
	if length <= 0 {
		length = r.cfg.WalkLength
	}
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	id := r.idSeq.Add(1)
	rng := r.master.Split(id)
	path := make([]graph.VertexID, 1, length+1)
	path[0] = start
	cur, left := start, length
	if r.cacheOn {
		for left > 0 {
			vw, _ := r.rv.get(cur)
			if vw == nil {
				break
			}
			nxt, ok := vw.Sample(rng)
			if !ok {
				break
			}
			path = append(path, nxt)
			cur = nxt
			left--
			r.localHits.Add(1)
		}
	}
	if left == 0 {
		r.queries.Add(1)
		r.steps.Add(int64(length))
		readerLocalHits.Add(int64(length))
		if !t0.IsZero() {
			readerQueryNs.ObserveSince(t0)
		}
		return path, nil
	}
	r.maybeRequestView(cur)
	wk := &fabric.Walker{
		ID:     id,
		Cur:    cur,
		Left:   left,
		Rng:    rng.State(),
		Record: true,
		Path:   path,
	}
	reply := make(chan *fabric.Walker, 1)
	if err := r.register(id, func(w *fabric.Walker) { reply <- w }); err != nil {
		return nil, err
	}
	r.launches.Add(1)
	if err := r.port.LaunchWalker(r.planNow().Owner(cur), wk); err != nil {
		if r.planNow().Replicas > 1 {
			// The target link died under the launch; retry toward
			// whatever replica the flipped plan names.
			go r.relaunchWalker(wk)
		} else if cb := r.resolve(id); cb != nil {
			return nil, err
		}
	}
	w := <-reply
	if w == nil || w.Failed {
		return nil, ErrFabricDown
	}
	local := int64(length - left)
	r.queries.Add(1)
	r.steps.Add(w.Steps + local)
	r.transfers.Add(w.Transfers)
	readerLocalHits.Add(local)
	readerLaunches.Inc()
	if !t0.IsZero() {
		readerQueryNs.ObserveSince(t0)
	}
	return w.Path, nil
}

// DeepWalk runs a bulk first-order walk through the shard set from this
// reader: every start becomes a transferable walker with its own RNG
// stream, exactly as on the write-coordinator, but retires route back
// here. The write session keeps ingesting concurrently.
func (r *ReaderService) DeepWalk(cfg Config) (Result, TransferStats, error) {
	n := r.NumVertices()
	cfg = cfg.withDefaults(n)
	starts := cfg.Starts
	if starts == nil {
		starts = make([]graph.VertexID, n)
		for i := range starts {
			starts[i] = graph.VertexID(i)
		}
	}
	var visits *visitCounter
	if cfg.CountVisits {
		visits = newVisitCounter(n)
	}
	bulkMaster := xrand.New(cfg.Seed)
	var wg sync.WaitGroup
	var steps, transfers, local, remote atomic.Int64
	var failed atomic.Bool
	var visMu sync.Mutex
	replicated := r.planNow().Replicas > 1
	for i, st := range starts {
		id := r.idSeq.Add(1)
		if visits != nil {
			visits.bump(st)
		}
		wk := &fabric.Walker{
			ID:     id,
			Cur:    st,
			Left:   cfg.Length,
			Rng:    bulkMaster.Split(uint64(i)).State(),
			Record: cfg.CountVisits,
		}
		wg.Add(1)
		cb := func(w *fabric.Walker) {
			if w == nil || w.Failed {
				failed.Store(true)
			} else {
				steps.Add(w.Steps)
				transfers.Add(w.Transfers)
				local.Add(w.Local)
				remote.Add(w.Remote)
				if visits != nil {
					visMu.Lock()
					for _, v := range w.Path {
						visits.bump(v)
					}
					visMu.Unlock()
				}
			}
			wg.Done()
		}
		if err := r.register(id, cb); err != nil {
			wg.Done()
			failed.Store(true)
			continue
		}
		r.launches.Add(1)
		if err := r.port.LaunchWalker(r.planNow().Owner(st), wk); err != nil {
			if replicated {
				go r.relaunchWalker(wk)
				continue
			}
			if cb := r.resolve(id); cb != nil {
				failed.Store(true)
				wg.Done()
			}
		}
	}
	wg.Wait()
	r.steps.Add(steps.Load())
	r.transfers.Add(transfers.Load())
	if failed.Load() {
		return Result{}, TransferStats{}, ErrFabricDown
	}
	res := Result{Walkers: len(starts), Steps: steps.Load()}
	if visits != nil {
		res.Visits = visits.snapshot()
	}
	return res, TransferStats{Transfers: transfers.Load(), Local: local.Load(), Remote: remote.Load()}, nil
}

// Stats snapshots the reader's activity counters.
func (r *ReaderService) Stats() ReaderStats {
	r.rv.mu.RLock()
	cached := len(r.rv.views)
	r.rv.mu.RUnlock()
	return ReaderStats{
		Queries:      r.queries.Load(),
		Steps:        r.steps.Load(),
		Transfers:    r.transfers.Load(),
		LocalHits:    r.localHits.Load(),
		Launches:     r.launches.Load(),
		ViewRequests: r.viewReqs.Load(),
		CachedViews:  cached,
		PlanEpoch:    r.planNow().Epoch,
		Broadcasts:   r.broadcasts.Load(),
		PlanFlips:    r.planFlips.Load(),
		Applied:      r.AppliedStamp(),
	}
}

// Close detaches the reader: its port closes (in-flight walkers' retires
// are dropped by the transport — nobody is waiting), the event loop
// drains out, and anything still pending fails with ErrFabricDown. The
// write session and every other reader are unaffected. Idempotent.
func (r *ReaderService) Close() error {
	r.closeOnce.Do(func() {
		obs.Log.Record(obs.EvReaderDetach, -1, "read-coordinator detached")
		r.port.Close()
	})
	r.evloop.Wait()
	return nil
}
