// Package inproc is the in-process shard fabric: the channel-and-mailbox
// plumbing the original ShardedLiveService hard-wired, extracted behind
// the fabric port interfaces. It is the behavior-identical baseline the
// sharded differential harness validates, and the reference point the
// loopback-TCP transport is measured against.
//
// Topology: per shard, one unbounded walker mailbox (launches and peer
// transfers) and one *bounded* ingest channel (the bound is the
// backpressure the router propagates to Feed, exactly as before the
// extraction); one unbounded event mailbox carries retires and acks back
// to the coordinator. The event mailbox closes only after every shard
// port has closed — the shard-done handshake that lets the coordinator's
// event loop drain everything a shard produced before exiting.
package inproc

import (
	"fmt"
	"sync"

	"github.com/bingo-rw/bingo/internal/fabric"
)

// Fabric is an in-process shard interconnect. Create one per session,
// hand CoordPort to the coordinator and ShardPort(i) to shard i's node.
type Fabric struct {
	shards  int
	walkers []*fabric.Mailbox[*fabric.Walker]
	ingests []chan *fabric.Ingest
	views   []*fabric.Mailbox[*fabric.ViewMsg]
	blocks  []*fabric.Mailbox[*fabric.MigrateBlock]
	events  *fabric.Mailbox[fabric.Event]

	mu         sync.Mutex
	coordDone  bool
	shardsOpen int
}

// New builds a fabric for shards nodes with the given ingest-queue bound.
func New(shards, queueDepth int) *Fabric {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	f := &Fabric{
		shards:     shards,
		walkers:    make([]*fabric.Mailbox[*fabric.Walker], shards),
		ingests:    make([]chan *fabric.Ingest, shards),
		views:      make([]*fabric.Mailbox[*fabric.ViewMsg], shards),
		blocks:     make([]*fabric.Mailbox[*fabric.MigrateBlock], shards),
		events:     fabric.NewMailbox[fabric.Event](),
		shardsOpen: shards,
	}
	for i := range f.walkers {
		f.walkers[i] = fabric.NewMailbox[*fabric.Walker]()
		f.ingests[i] = make(chan *fabric.Ingest, queueDepth)
		f.views[i] = fabric.NewMailbox[*fabric.ViewMsg]()
		f.blocks[i] = fabric.NewMailbox[*fabric.MigrateBlock]()
	}
	return f
}

// CoordPort returns the coordinator's endpoint.
func (f *Fabric) CoordPort() fabric.CoordPort { return (*coordPort)(f) }

// ShardPort returns shard k's endpoint.
func (f *Fabric) ShardPort(k int) fabric.ShardPort {
	if k < 0 || k >= f.shards {
		panic(fmt.Sprintf("inproc: shard %d of %d", k, f.shards))
	}
	return &shardPort{f: f, shard: k}
}

// shardDone records one shard port closing; the last one closes the
// event stream.
func (f *Fabric) shardDone() {
	f.mu.Lock()
	f.shardsOpen--
	last := f.shardsOpen == 0
	f.mu.Unlock()
	if last {
		f.events.Close()
	}
}

type coordPort Fabric

func (c *coordPort) Shards() int { return c.shards }

func (c *coordPort) LaunchWalker(dst int, w *fabric.Walker) error {
	c.walkers[dst].Push(w)
	return nil
}

func (c *coordPort) PublishUpdates(dst int, in fabric.Ingest) error {
	c.ingests[dst] <- &in
	return nil
}

func (c *coordPort) PublishBarrier(in fabric.Ingest) error {
	for i := range c.ingests {
		tok := in
		c.ingests[i] <- &tok
	}
	return nil
}

func (c *coordPort) NextEvent() (fabric.Event, bool) { return c.events.Pop() }

// Close ends the session: every shard's ingest channel is closed (the
// single ingester drains what is queued, then exits) and the walker
// mailboxes close (crews drain, then exit). The caller guarantees no
// publisher or launcher is still running — the coordinator stops its
// router and waits for in-flight walkers first. Idempotent.
func (c *coordPort) Close() error {
	c.mu.Lock()
	done := c.coordDone
	c.coordDone = true
	c.mu.Unlock()
	if done {
		return nil
	}
	for i := range c.ingests {
		close(c.ingests[i])
		c.walkers[i].Close()
		c.views[i].Close()
		c.blocks[i].Close()
	}
	return nil
}

type shardPort struct {
	f     *Fabric
	shard int
	once  sync.Once
}

func (p *shardPort) Shard() int { return p.shard }

func (p *shardPort) NextWalker() (*fabric.Walker, bool) {
	return p.f.walkers[p.shard].Pop()
}

func (p *shardPort) NextWalkers(dst []*fabric.Walker, max int) ([]*fabric.Walker, bool) {
	return p.f.walkers[p.shard].PopUpTo(dst, max)
}

func (p *shardPort) NextIngest() (*fabric.Ingest, bool) {
	in, ok := <-p.f.ingests[p.shard]
	return in, ok
}

func (p *shardPort) ForwardWalker(dst int, w *fabric.Walker) error {
	p.f.walkers[dst].Push(w)
	return nil
}

func (p *shardPort) RequestView(dst int, rq *fabric.ViewRequest) error {
	p.f.views[dst].Push(&fabric.ViewMsg{Req: rq})
	return nil
}

func (p *shardPort) ReplyView(dst int, rp *fabric.ViewReply) error {
	p.f.views[dst].Push(&fabric.ViewMsg{Rep: rp})
	return nil
}

func (p *shardPort) NextView() (*fabric.ViewMsg, bool) {
	return p.f.views[p.shard].Pop()
}

func (p *shardPort) SendBlock(dst int, mb *fabric.MigrateBlock) error {
	p.f.blocks[dst].Push(mb)
	return nil
}

func (p *shardPort) NextBlock() (*fabric.MigrateBlock, bool) {
	return p.f.blocks[p.shard].Pop()
}

func (p *shardPort) Migrated(d *fabric.MigrateDone) error {
	p.f.events.Push(fabric.Event{Kind: fabric.EvMigrated, Done: d})
	return nil
}

func (p *shardPort) Credit(c *fabric.Credit) error {
	p.f.events.Push(fabric.Event{Kind: fabric.EvCredit, Credit: c})
	return nil
}

func (p *shardPort) Retire(w *fabric.Walker) error {
	p.f.events.Push(fabric.Event{Kind: fabric.EvRetire, Walker: w})
	return nil
}

func (p *shardPort) Ack(a *fabric.Ack) error {
	p.f.events.Push(fabric.Event{Kind: fabric.EvAck, Ack: a})
	return nil
}

func (p *shardPort) Close() error {
	p.once.Do(p.f.shardDone)
	return nil
}
