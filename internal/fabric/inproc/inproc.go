// Package inproc is the in-process shard fabric: the channel-and-mailbox
// plumbing the original ShardedLiveService hard-wired, extracted behind
// the fabric port interfaces. It is the behavior-identical baseline the
// sharded differential harness validates, and the reference point the
// loopback-TCP transport is measured against.
//
// Topology: per shard, one unbounded walker mailbox (launches and peer
// transfers) and one *bounded* ingest channel (the bound is the
// backpressure the router propagates to Feed, exactly as before the
// extraction); one unbounded event mailbox carries retires and acks back
// to the coordinator. The event mailbox closes only after every shard
// port has closed — the shard-done handshake that lets the coordinator's
// event loop drain everything a shard produced before exiting.
package inproc

import (
	"fmt"
	"sync"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/obs"
)

// Per-stream-kind message counters, resolved once at init: the inproc
// fabric has no frames or bytes, but the same per-kind traffic view as
// the wire transport keeps the two fabrics comparable on /metrics.
var (
	msgWalkers   = obs.C("bingo_fabric_msgs_total", "fabric", "inproc", "kind", "walker")
	msgUpdates   = obs.C("bingo_fabric_msgs_total", "fabric", "inproc", "kind", "updates")
	msgBarriers  = obs.C("bingo_fabric_msgs_total", "fabric", "inproc", "kind", "barrier")
	msgViews     = obs.C("bingo_fabric_msgs_total", "fabric", "inproc", "kind", "view")
	msgBlocks    = obs.C("bingo_fabric_msgs_total", "fabric", "inproc", "kind", "mig_block")
	msgEvents    = obs.C("bingo_fabric_msgs_total", "fabric", "inproc", "kind", "event")
	msgBroadcast = obs.C("bingo_fabric_msgs_total", "fabric", "inproc", "kind", "broadcast")
)

// Fabric is an in-process shard interconnect. Create one per session,
// hand CoordPort to the write-coordinator, ShardPort(i) to shard i's
// node, and AttachReader to each read-coordinator.
type Fabric struct {
	shards  int
	walkers []*fabric.Mailbox[*fabric.Walker]
	ingests []chan *fabric.Ingest
	views   []*fabric.Mailbox[*fabric.ViewMsg]
	blocks  []*fabric.Mailbox[*fabric.MigrateBlock]
	events  *fabric.Mailbox[fabric.Event]

	mu         sync.Mutex
	coordDone  bool
	shardsOpen int

	// Reader registry: attach nonce → event mailbox. lastBcast caches the
	// write-coordinator's newest broadcast so a late attacher starts from
	// current state instead of waiting for the next flip.
	readerMu  sync.Mutex
	readers   map[uint64]*fabric.Mailbox[fabric.Event]
	readerSeq uint64
	lastBcast *fabric.Broadcast
}

// New builds a fabric for shards nodes with the given ingest-queue bound.
func New(shards, queueDepth int) *Fabric {
	if queueDepth <= 0 {
		queueDepth = 256
	}
	f := &Fabric{
		shards:     shards,
		walkers:    make([]*fabric.Mailbox[*fabric.Walker], shards),
		ingests:    make([]chan *fabric.Ingest, shards),
		views:      make([]*fabric.Mailbox[*fabric.ViewMsg], shards),
		blocks:     make([]*fabric.Mailbox[*fabric.MigrateBlock], shards),
		events:     fabric.NewMailbox[fabric.Event](),
		shardsOpen: shards,
	}
	for i := range f.walkers {
		f.walkers[i] = fabric.NewMailbox[*fabric.Walker]()
		f.ingests[i] = make(chan *fabric.Ingest, queueDepth)
		f.views[i] = fabric.NewMailbox[*fabric.ViewMsg]()
		f.blocks[i] = fabric.NewMailbox[*fabric.MigrateBlock]()
	}
	f.readers = map[uint64]*fabric.Mailbox[fabric.Event]{}
	return f
}

// AttachReader registers a read-coordinator on the fabric and returns its
// port. The cached last broadcast (if the write-coordinator has published
// one) is delivered immediately, so the reader can build its initial plan
// without waiting for the next flip. Any number of readers may attach;
// each detaches independently with Close, and all reader event streams
// end when the write session closes.
func (f *Fabric) AttachReader() fabric.ReadPort {
	mb := fabric.NewMailbox[fabric.Event]()
	f.readerMu.Lock()
	f.readerSeq++
	nonce := f.readerSeq
	f.readers[nonce] = mb
	last := f.lastBcast
	f.readerMu.Unlock()
	f.mu.Lock()
	done := f.coordDone
	f.mu.Unlock()
	if done {
		// No live write session: the reader observes an already-ended
		// event stream instead of hanging on a dead fabric.
		mb.Close()
	} else if last != nil {
		b := *last
		mb.Push(fabric.Event{Kind: fabric.EvBroadcast, Bcast: &b})
	}
	return &readPort{f: f, nonce: nonce, events: mb}
}

// readerEvents returns the event mailbox for an origin nonce (nil when
// the reader has detached — its traffic is dropped, not misdelivered).
func (f *Fabric) readerEvents(origin uint64) *fabric.Mailbox[fabric.Event] {
	f.readerMu.Lock()
	defer f.readerMu.Unlock()
	return f.readers[origin]
}

// CoordPort returns the coordinator's endpoint.
func (f *Fabric) CoordPort() fabric.CoordPort { return (*coordPort)(f) }

// ShardPort returns shard k's endpoint.
func (f *Fabric) ShardPort(k int) fabric.ShardPort {
	if k < 0 || k >= f.shards {
		panic(fmt.Sprintf("inproc: shard %d of %d", k, f.shards))
	}
	return &shardPort{f: f, shard: k}
}

// shardDone records one shard port closing; the last one closes the
// event stream.
func (f *Fabric) shardDone() {
	f.mu.Lock()
	f.shardsOpen--
	last := f.shardsOpen == 0
	f.mu.Unlock()
	if last {
		f.events.Close()
	}
}

type coordPort Fabric

func (c *coordPort) Shards() int { return c.shards }

func (c *coordPort) LaunchWalker(dst int, w *fabric.Walker) error {
	msgWalkers.Inc()
	c.walkers[dst].Push(w)
	return nil
}

func (c *coordPort) PublishUpdates(dst int, in fabric.Ingest) error {
	msgUpdates.Inc()
	c.ingests[dst] <- &in
	return nil
}

func (c *coordPort) PublishBarrier(in fabric.Ingest) error {
	msgBarriers.Add(int64(len(c.ingests)))
	for i := range c.ingests {
		tok := in
		c.ingests[i] <- &tok
	}
	return nil
}

func (c *coordPort) NextEvent() (fabric.Event, bool) { return c.events.Pop() }

// PublishBroadcast caches the broadcast for late attachers and fans a
// copy to every attached reader's event stream.
func (c *coordPort) PublishBroadcast(b fabric.Broadcast) error {
	msgBroadcast.Inc()
	f := (*Fabric)(c)
	f.readerMu.Lock()
	cp := b
	f.lastBcast = &cp
	mbs := make([]*fabric.Mailbox[fabric.Event], 0, len(f.readers))
	for _, mb := range f.readers {
		mbs = append(mbs, mb)
	}
	f.readerMu.Unlock()
	for _, mb := range mbs {
		bc := b
		mb.Push(fabric.Event{Kind: fabric.EvBroadcast, Bcast: &bc})
	}
	return nil
}

// Close ends the session: every shard's ingest channel is closed (the
// single ingester drains what is queued, then exits), the walker
// mailboxes close (crews drain, then exit), and every attached reader's
// event stream ends — readers cannot outlive the write session that owns
// the plan. The caller guarantees no publisher or launcher is still
// running — the coordinator stops its router and waits for in-flight
// walkers first. Idempotent.
func (c *coordPort) Close() error {
	c.mu.Lock()
	done := c.coordDone
	c.coordDone = true
	c.mu.Unlock()
	if done {
		return nil
	}
	for i := range c.ingests {
		close(c.ingests[i])
		c.walkers[i].Close()
		c.views[i].Close()
		c.blocks[i].Close()
	}
	f := (*Fabric)(c)
	f.readerMu.Lock()
	mbs := make([]*fabric.Mailbox[fabric.Event], 0, len(f.readers))
	for _, mb := range f.readers {
		mbs = append(mbs, mb)
	}
	f.readerMu.Unlock()
	for _, mb := range mbs {
		mb.Close()
	}
	return nil
}

type shardPort struct {
	f     *Fabric
	shard int
	once  sync.Once
}

func (p *shardPort) Shard() int { return p.shard }

func (p *shardPort) NextWalker() (*fabric.Walker, bool) {
	return p.f.walkers[p.shard].Pop()
}

func (p *shardPort) NextWalkers(dst []*fabric.Walker, max int) ([]*fabric.Walker, bool) {
	return p.f.walkers[p.shard].PopUpTo(dst, max)
}

func (p *shardPort) NextIngest() (*fabric.Ingest, bool) {
	in, ok := <-p.f.ingests[p.shard]
	return in, ok
}

func (p *shardPort) ForwardWalker(dst int, w *fabric.Walker) error {
	msgWalkers.Inc()
	p.f.walkers[dst].Push(w)
	return nil
}

func (p *shardPort) RequestView(dst int, rq *fabric.ViewRequest) error {
	msgViews.Inc()
	p.f.views[dst].Push(&fabric.ViewMsg{Req: rq})
	return nil
}

func (p *shardPort) ReplyView(dst int, rp *fabric.ViewReply) error {
	if rp.Origin != 0 {
		// A reader-originated request: the reply goes to that reader's
		// event stream (dropped if it detached), not a peer view stream.
		if mb := p.f.readerEvents(rp.Origin); mb != nil {
			mb.Push(fabric.Event{Kind: fabric.EvView, Rep: rp})
		}
		return nil
	}
	p.f.views[dst].Push(&fabric.ViewMsg{Rep: rp})
	return nil
}

func (p *shardPort) NextView() (*fabric.ViewMsg, bool) {
	return p.f.views[p.shard].Pop()
}

func (p *shardPort) SendBlock(dst int, mb *fabric.MigrateBlock) error {
	msgBlocks.Inc()
	p.f.blocks[dst].Push(mb)
	return nil
}

func (p *shardPort) NextBlock() (*fabric.MigrateBlock, bool) {
	return p.f.blocks[p.shard].Pop()
}

func (p *shardPort) Migrated(d *fabric.MigrateDone) error {
	p.f.events.Push(fabric.Event{Kind: fabric.EvMigrated, Done: d})
	return nil
}

func (p *shardPort) Credit(c *fabric.Credit) error {
	p.f.events.Push(fabric.Event{Kind: fabric.EvCredit, Credit: c})
	return nil
}

func (p *shardPort) Retire(w *fabric.Walker) error {
	if w.Origin != 0 {
		// A read-coordinator's walker: route the retire to its origin
		// (dropped if the reader detached mid-walk — nobody is waiting).
		if mb := p.f.readerEvents(w.Origin); mb != nil {
			mb.Push(fabric.Event{Kind: fabric.EvRetire, Walker: w})
		}
		return nil
	}
	p.f.events.Push(fabric.Event{Kind: fabric.EvRetire, Walker: w})
	return nil
}

func (p *shardPort) Ack(a *fabric.Ack) error {
	msgEvents.Inc()
	p.f.events.Push(fabric.Event{Kind: fabric.EvAck, Ack: a})
	return nil
}

func (p *shardPort) Close() error {
	p.once.Do(p.f.shardDone)
	return nil
}

// readPort is one attached read-coordinator's endpoint. It stamps the
// reader's nonce on every outbound walker and view request so shard-side
// logic stays origin-agnostic.
type readPort struct {
	f      *Fabric
	nonce  uint64
	events *fabric.Mailbox[fabric.Event]
	once   sync.Once
}

func (r *readPort) Shards() int { return r.f.shards }

func (r *readPort) LaunchWalker(dst int, w *fabric.Walker) error {
	msgWalkers.Inc()
	w.Origin = r.nonce
	r.f.walkers[dst].Push(w)
	return nil
}

func (r *readPort) RequestView(dst int, rq *fabric.ViewRequest) error {
	msgViews.Inc()
	rq.Origin = r.nonce
	r.f.views[dst].Push(&fabric.ViewMsg{Req: rq})
	return nil
}

func (r *readPort) NextEvent() (fabric.Event, bool) { return r.events.Pop() }

func (r *readPort) Close() error {
	r.once.Do(func() {
		r.f.readerMu.Lock()
		delete(r.f.readers, r.nonce)
		r.f.readerMu.Unlock()
		r.events.Close()
	})
	return nil
}
