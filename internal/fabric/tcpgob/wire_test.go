// Wire-format coverage for the shard fabric: every message class must
// round-trip through a length-prefixed gob frame unchanged — including
// float-bias updates and vertex IDs far beyond any construction-time
// space. The PR-2 bug class (state frozen to the initial vertex space)
// must not reappear at the wire boundary, so growth-path IDs up to the
// top of the uint32 range appear in every payload that carries vertices.
package tcpgob

import (
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// roundTrip pushes one frame through a link pair over an in-memory pipe.
func roundTrip(t *testing.T, f *frame) *frame {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	l1, l2 := newLink(c1), newLink(c2)
	errc := make(chan error, 1)
	go func() { errc <- l1.write(f) }()
	got, err := l2.read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	return got
}

func TestWalkerFrameRoundTrip(t *testing.T) {
	// A walker mid-flight on the growth path: IDs near the top of the
	// uint32 space, a live RNG stream, accumulated telemetry.
	r := xrand.New(77)
	r.Uint64() // advance so the state is not the seed-fresh one
	w := fabric.Walker{
		ID:        901,
		Cur:       4_294_967_290, // far beyond any construction-time space
		Left:      13,
		Rng:       r.State(),
		Record:    true,
		Path:      []graph.VertexID{3, 4_000_000_000, 4_294_967_290},
		Steps:     67,
		Transfers: 9,
		Local:     58,
	}
	got := roundTrip(t, &frame{Kind: kWalker, Walker: w})
	if got.Kind != kWalker || !reflect.DeepEqual(got.Walker, w) {
		t.Fatalf("walker round-trip: got %+v, want %+v", got.Walker, w)
	}
	// The resumed stream must continue draw-for-draw.
	want := xrand.FromState(w.Rng).Uint64()
	if have := xrand.FromState(got.Walker.Rng).Uint64(); have != want {
		t.Fatalf("RNG stream diverged across the wire: %d vs %d", have, want)
	}
}

func TestWalkerRecordSurvivesEmptyPath(t *testing.T) {
	// gob collapses empty and nil slices; the Record *flag* is what keeps
	// a visit-counting bulk walker recording after its first hand-off.
	w := fabric.Walker{ID: 1, Cur: 5, Left: 3, Record: true, Path: []graph.VertexID{}}
	got := roundTrip(t, &frame{Kind: kWalker, Walker: w})
	if !got.Walker.Record {
		t.Fatal("Record flag lost on a walker with an empty path")
	}
}

func TestUpdateBatchFrameRoundTrip(t *testing.T) {
	// Float-bias updates and growth-path IDs in one routed sub-batch.
	ups := []graph.Update{
		{Op: graph.OpInsert, Src: 0, Dst: 1, Bias: 1},
		{Op: graph.OpInsert, Src: 2_100_000_000, Dst: 4_294_967_295, Bias: 7, FBias: 0.625},
		{Op: graph.OpDelete, Src: 3_999_999_999, Dst: 12},
		{Op: graph.OpInsert, Src: 5, Dst: 6, Bias: 1 << 62, FBias: 0.001953125},
	}
	in := fabric.Ingest{Ups: ups, Watermarks: []int64{12, 0, 4_000_000_000_000}}
	got := roundTrip(t, &frame{Kind: kUpdates, Ingest: in})
	if got.Kind != kUpdates || !reflect.DeepEqual(got.Ingest, in) {
		t.Fatalf("update batch round-trip: got %+v, want %+v", got.Ingest, in)
	}
}

func TestBarrierAndAckFrameRoundTrip(t *testing.T) {
	in := fabric.Ingest{Barrier: 42, Dump: true, Watermarks: []int64{7, 9}}
	got := roundTrip(t, &frame{Kind: kBarrier, Ingest: in})
	if got.Kind != kBarrier || !reflect.DeepEqual(got.Ingest, in) {
		t.Fatalf("barrier round-trip: got %+v, want %+v", got.Ingest, in)
	}

	a := fabric.Ack{
		Shard:    3,
		Seq:      42,
		Updates:  10_000,
		Dropped:  2,
		Err:      "walk: zero bias",
		Vertices: 4_000_000_001, // a grown space, reported back
		Edges: []graph.Edge{
			{Src: 1, Dst: 4_294_967_294, Bias: 9},
			{Src: 2_500_000_000, Dst: 3, Bias: 1, FBias: 0.25},
		},
		Cache: fabric.CacheTallies{LocalHits: 100, RemoteHits: 7, ViewRequests: 3},
	}
	gotA := roundTrip(t, &frame{Kind: kAck, Ack: a})
	if gotA.Kind != kAck || !reflect.DeepEqual(gotA.Ack, a) {
		t.Fatalf("ack round-trip: got %+v, want %+v", gotA.Ack, a)
	}
}

func TestHelloFrameRoundTrip(t *testing.T) {
	h := fabric.Hello{
		Shards: 4, Shard: 2, RangeSize: 1009, NumVertices: 4036,
		FloatBias: true,
		Peers:     []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3", "127.0.0.1:4"},
		Session:   0xDEADBEEFCAFE,
		Cache:     fabric.CacheSpec{Size: 128, MinDegree: 4, RemoteSize: 64, RequestAfter: 3},
	}
	got := roundTrip(t, &frame{Kind: kHelloCoord, Hello: h})
	if got.Kind != kHelloCoord || !reflect.DeepEqual(got.Hello, h) {
		t.Fatalf("hello round-trip: got %+v, want %+v", got.Hello, h)
	}
}

// TestWalkerBatchFrameRoundTrip pins the coalesced hand-off frame: the
// batch decodes walker-for-walker, RNG streams intact.
func TestWalkerBatchFrameRoundTrip(t *testing.T) {
	r := xrand.New(3)
	ws := make([]fabric.Walker, 5)
	for i := range ws {
		r.Uint64()
		ws[i] = fabric.Walker{
			ID: uint64(100 + i), Cur: graph.VertexID(4_000_000_000 + i), Left: i,
			Rng: r.State(), Steps: int64(i) * 7, Transfers: int64(i), Remote: int64(i % 2),
		}
	}
	got := roundTrip(t, &frame{Kind: kWalkerBatch, Walkers: ws})
	if got.Kind != kWalkerBatch || !reflect.DeepEqual(got.Walkers, ws) {
		t.Fatalf("walker batch round-trip: got %+v, want %+v", got.Walkers, ws)
	}
}

// TestViewFrameRoundTrip pins the hub-view request/reply frames,
// including a full VertexView payload with dense and list groups.
func TestViewFrameRoundTrip(t *testing.T) {
	rq := fabric.ViewRequest{From: 3, Vertex: 4_123_456_789}
	gotRq := roundTrip(t, &frame{Kind: kViewReq, ViewReq: rq})
	if gotRq.Kind != kViewReq || !reflect.DeepEqual(gotRq.ViewReq, rq) {
		t.Fatalf("view request round-trip: got %+v, want %+v", gotRq.ViewReq, rq)
	}

	rp := fabric.ViewReply{
		From: 1, Vertex: 4_123_456_789, Hub: true, Applied: 987654,
		View: core.VertexView{
			Vertex:    4_123_456_789,
			Epoch:     44,
			Applied:   987654,
			RadixBits: 3,
			Dsts:      []graph.VertexID{5, 4_294_967_295, 9},
			Bias:      []uint64{3, 1 << 40, 7},
			Rem:       []float32{0, 0.25, 0.5},
			Groups: []core.ViewGroup{
				{GID: 2, Kind: core.KindRegular, Count: 2, One: -1, List: []int32{0, 2}},
				{GID: 9, Kind: core.KindOne, Count: 1, One: 1},
			},
			Cum:     []float64{12, 14, 14.75},
			Dec:     true,
			DecList: []int32{1, 2},
			DecSum:  0.75,
		},
	}
	gotRp := roundTrip(t, &frame{Kind: kViewRep, ViewRep: rp})
	if gotRp.Kind != kViewRep || !reflect.DeepEqual(gotRp.ViewRep, rp) {
		t.Fatalf("view reply round-trip: got %+v, want %+v", gotRp.ViewRep, rp)
	}
}

// TestLoopbackFabricSession exercises the transport end to end over real
// loopback sockets, beneath the walk layer: session hello, routed
// publish + barrier + ack, a walker launched on shard 0, transferred
// peer-to-peer to shard 1, retired to the coordinator, then shutdown.
func TestLoopbackFabricSession(t *testing.T) {
	l0, err := Listen("127.0.0.1:0", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l0.Close()
	l1, err := Listen("127.0.0.1:0", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	addrs := []string{l0.Addr().String(), l1.Addr().String()}

	coord, err := Dial(addrs, fabric.Hello{RangeSize: 100, NumVertices: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	sessions := make([]*ShardConn, 2)
	for i, l := range []*Listener{l0, l1} {
		sc, h, err := l.Accept()
		if err != nil {
			t.Fatalf("shard %d accept: %v", i, err)
		}
		if h.Shard != i || h.Shards != 2 || h.RangeSize != 100 || len(h.Peers) != 2 || h.Session == 0 {
			t.Fatalf("shard %d hello %+v", i, h)
		}
		sessions[i] = sc
	}
	s0, s1 := sessions[0], sessions[1]

	// Shard node stand-ins: echo barriers as acks, forward every walker
	// once (0 → 1), retire it at shard 1.
	done := make(chan struct{})
	go func() {
		defer close(done)
		in, ok := s0.NextIngest()
		if !ok || len(in.Ups) != 2 || in.Ups[1].Src != 4_000_000_000 {
			t.Errorf("shard 0 ingest: ok=%v %+v", ok, in)
			return
		}
		bar, ok := s0.NextIngest()
		if !ok || bar.Barrier != 7 {
			t.Errorf("shard 0 barrier: ok=%v %+v", ok, bar)
			return
		}
		s0.Ack(&fabric.Ack{Shard: 0, Seq: bar.Barrier, Updates: 2})
		wk, ok := s0.NextWalker()
		if !ok {
			t.Error("shard 0: no walker")
			return
		}
		wk.Cur, wk.Transfers = 150, 1
		if err := s0.ForwardWalker(1, wk); err != nil {
			t.Errorf("forward: %v", err)
		}
	}()
	go func() {
		bar, ok := s1.NextIngest()
		if !ok || bar.Barrier != 7 {
			t.Errorf("shard 1 barrier: ok=%v %+v", ok, bar)
			return
		}
		s1.Ack(&fabric.Ack{Shard: 1, Seq: bar.Barrier})
		wk, ok := s1.NextWalker()
		if !ok || wk.Cur != 150 || wk.Transfers != 1 {
			t.Errorf("shard 1 walker: ok=%v %+v", ok, wk)
			return
		}
		wk.Steps = 5
		s1.Retire(wk)
	}()

	if err := coord.PublishUpdates(0, fabric.Ingest{Ups: []graph.Update{
		{Op: graph.OpInsert, Src: 1, Dst: 2, Bias: 3},
		{Op: graph.OpInsert, Src: 4_000_000_000, Dst: 5, Bias: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := coord.PublishBarrier(fabric.Ingest{Barrier: 7}); err != nil {
		t.Fatal(err)
	}
	if err := coord.LaunchWalker(0, &fabric.Walker{ID: 11, Cur: 10, Left: 5}); err != nil {
		t.Fatal(err)
	}

	acks, retires := 0, 0
	for acks < 2 || retires < 1 {
		ev, ok := coord.NextEvent()
		if !ok {
			t.Fatalf("event stream ended early (acks %d, retires %d)", acks, retires)
		}
		switch ev.Kind {
		case fabric.EvAck:
			if ev.Ack.Seq != 7 {
				t.Fatalf("ack %+v", ev.Ack)
			}
			acks++
		case fabric.EvRetire:
			if ev.Walker.ID != 11 || ev.Walker.Steps != 5 {
				t.Fatalf("retire %+v", ev.Walker)
			}
			retires++
		}
	}
	<-done

	// Shutdown: the daemons' streams end, they close, the event stream
	// follows.
	coord.Close()
	for i, s := range []*ShardConn{s0, s1} {
		if _, ok := s.NextWalker(); ok {
			t.Fatalf("shard %d walker stream still open after shutdown", i)
		}
		if _, ok := s.NextIngest(); ok {
			t.Fatalf("shard %d ingest stream still open after shutdown", i)
		}
		s.Close()
	}
	deadline := time.After(10 * time.Second)
	for {
		ev, ok := coord.NextEvent()
		if !ok {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("event stream did not close after shutdown (stuck on %+v)", ev)
		default:
		}
	}
}
