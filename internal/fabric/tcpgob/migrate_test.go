// Wire coverage for the rebalancer's migration protocol: the offer and
// commit riding the ingest stream, the extracted block on the peer
// stream, and the completion report on the coordinator link must all
// round-trip unchanged — with growth-path vertex IDs and float-mode
// weights in the shipped rows, and the plan overlay in the session
// Hello (a daemon rebuilds its ownership function from exactly these
// bytes).
package tcpgob

import (
	"reflect"
	"testing"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
)

func TestMigrateIngestFrameRoundTrip(t *testing.T) {
	offer := fabric.Ingest{
		Offer:      fabric.MigrateOffer{Block: 1 << 40, To: 3, Epoch: 7},
		Watermarks: []int64{5, 0, 12},
	}
	got := roundTrip(t, &frame{Kind: kUpdates, Ingest: offer})
	if !reflect.DeepEqual(got.Ingest, offer) {
		t.Fatalf("offer element: got %+v, want %+v", got.Ingest, offer)
	}
	if got.Ingest.IsBarrier() || got.Ingest.Commit.Epoch != 0 {
		t.Fatal("offer element misclassified after the wire")
	}

	commit := fabric.Ingest{
		Commit:     fabric.MigrateCommit{Block: 9, From: 0, To: 2, Epoch: 8, MinWatermark: 4096},
		Watermarks: []int64{1, 2, 3},
	}
	got = roundTrip(t, &frame{Kind: kUpdates, Ingest: commit})
	if !reflect.DeepEqual(got.Ingest, commit) {
		t.Fatalf("commit element: got %+v, want %+v", got.Ingest, commit)
	}

	// A heat barrier stays a barrier and keeps its flag.
	heat := fabric.Ingest{Barrier: 11, Heat: true, Watermarks: []int64{0, 0, 0}}
	got = roundTrip(t, &frame{Kind: kBarrier, Ingest: heat})
	if !got.Ingest.IsBarrier() || !got.Ingest.Heat {
		t.Fatalf("heat barrier lost its markers: %+v", got.Ingest)
	}
}

func TestMigrateBlockFrameRoundTrip(t *testing.T) {
	mb := fabric.MigrateBlock{
		Block:     3,
		From:      1,
		Epoch:     5,
		Watermark: 99999,
		Rows: []graph.Update{
			{Op: graph.OpInsert, Src: 4_294_967_290, Dst: 4_000_000_000, Bias: 7},
			{Op: graph.OpInsert, Src: 4_294_967_290, Dst: 1, Bias: 2, FBias: 0.625},
		},
	}
	got := roundTrip(t, &frame{Kind: kMigBlock, MigBlock: mb})
	if got.Kind != kMigBlock || !reflect.DeepEqual(got.MigBlock, mb) {
		t.Fatalf("block round-trip: got %+v, want %+v", got.MigBlock, mb)
	}
}

func TestMigrateDoneFrameRoundTrip(t *testing.T) {
	for _, d := range []fabric.MigrateDone{
		{Shard: 2, Block: 3, Epoch: 5, Edges: 1234},
		{Shard: 1, Block: 1 << 33, Epoch: 6, Err: "install failed"},
	} {
		got := roundTrip(t, &frame{Kind: kMigDone, MigDone: d})
		if got.Kind != kMigDone || !reflect.DeepEqual(got.MigDone, d) {
			t.Fatalf("done round-trip: got %+v, want %+v", got.MigDone, d)
		}
	}
}

func TestHelloOverlayFrameRoundTrip(t *testing.T) {
	h := fabric.Hello{
		Shards: 4, Shard: 1,
		RangeSize:   150,
		NumVertices: 600,
		PlanEpoch:   3,
		Overlay:     map[uint64]int{0: 3, 9: 1, 1 << 40: 2},
		Peers:       []string{"a", "b", "c", "d"},
		Session:     77,
	}
	got := roundTrip(t, &frame{Kind: kHelloCoord, Hello: h})
	if !reflect.DeepEqual(got.Hello, h) {
		t.Fatalf("hello with overlay: got %+v, want %+v", got.Hello, h)
	}
}
