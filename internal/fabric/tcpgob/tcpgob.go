// Package tcpgob is the wire shard fabric: fabric messages travel as
// length-prefixed gob frames over TCP, one ordered full-duplex stream per
// peer pair, with reconnect-free single-session semantics.
//
// Topology. Each shard daemon listens on one address. The coordinator
// dials every daemon and opens the session by sending a Hello (partition
// geometry, engine spec, peer addresses); all coordinator→shard traffic
// (walker launches, routed update batches, barriers, shutdown) and all
// shard→coordinator traffic (retires, acks) flows on that connection.
// Shard-to-shard walker transfers use direct peer connections, dialed
// lazily on the first transfer toward each peer.
//
// Ordering. TCP gives each connection a FIFO byte stream and every
// connection has a single locked writer, so the fabric ordering contract
// (per-shard publish order, barrier-after-batches) holds by construction.
// Each daemon demultiplexes inbound frames into unbounded mailboxes
// (walkers vs ingest), so a crew blocked on an empty walker queue never
// stalls update delivery on the shared connection.
//
// Framing. Every frame is a 4-byte big-endian length followed by a
// self-contained gob encoding of one frame struct (a fresh encoder per
// frame: no cross-frame codec state, so a frame can be decoded in
// isolation and a torn stream fails loudly instead of desynchronizing).
package tcpgob

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/graph"
)

// maxFrame bounds a single frame's payload (sanity check against a torn
// or hostile stream; bootstrap batches and edge dumps are the big ones).
const maxFrame = 1 << 30

// frame kinds.
const (
	kHelloCoord = uint8(iota + 1) // coordinator session open (Hello)
	kHelloPeer                    // peer transfer stream open (From)
	kWalker                       // walker launch or transfer
	kUpdates                      // routed update sub-batch
	kBarrier                      // barrier token (Ingest)
	kRetire                       // finished walker, shard → coordinator
	kAck                          // barrier ack, shard → coordinator
	kShutdown                     // session end, coordinator → shard
)

// frame is the single wire message shape. Value fields: gob omits
// zero-valued fields, so unused payloads cost nothing on the wire, and a
// nil pointer can never poison an encode.
type frame struct {
	Kind   uint8
	From   int // kHelloPeer: sender shard index
	Hello  fabric.Hello
	Walker fabric.Walker
	Ups    []graph.Update
	Ingest fabric.Ingest
	Ack    fabric.Ack
}

// link is one connection with a locked writer. Reads are owned by exactly
// one goroutine and need no lock.
type link struct {
	conn net.Conn
	mu   sync.Mutex
	bw   *bufio.Writer
	br   *bufio.Reader
}

func newLink(conn net.Conn) *link {
	return &link{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
}

// write encodes f as one length-prefixed frame and flushes it.
func (l *link) write(f *frame) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("tcpgob: encode frame kind %d: %w", f.Kind, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.bw.Write(buf.Bytes()); err != nil {
		return err
	}
	return l.bw.Flush()
}

// read decodes the next frame (blocking).
func (l *link) read() (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(l.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpgob: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(l.br, payload); err != nil {
		return nil, err
	}
	f := new(frame)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(f); err != nil {
		return nil, fmt.Errorf("tcpgob: decode frame: %w", err)
	}
	return f, nil
}

// ---------------------------------------------------------------------------
// Shard daemon side

// ShardConn is a shard daemon's end of one serving session. It implements
// fabric.ShardPort once Accept has returned.
type ShardConn struct {
	shard, shards int
	ln            net.Listener

	walkers *fabric.Mailbox[*fabric.Walker]
	ingests *fabric.Mailbox[*fabric.Ingest]

	helloCh   chan fabric.Hello
	helloOnce sync.Once

	coordMu sync.Mutex
	coord   *link

	peerMu    sync.Mutex
	peerAddrs []string
	peers     map[int]*link

	downOnce  sync.Once
	closeOnce sync.Once
}

// Listen binds addr and starts accepting. shard/shards are this daemon's
// claimed position, validated against the coordinator's Hello (pass
// shards <= 0 to accept any count). Call Accept to block for the session.
func Listen(addr string, shard, shards int) (*ShardConn, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &ShardConn{
		shard:   shard,
		shards:  shards,
		ln:      ln,
		walkers: fabric.NewMailbox[*fabric.Walker](),
		ingests: fabric.NewMailbox[*fabric.Ingest](),
		helloCh: make(chan fabric.Hello, 1),
		peers:   map[int]*link{},
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *ShardConn) Addr() net.Addr { return s.ln.Addr() }

// Accept blocks until the coordinator opens the session and returns its
// Hello. After Accept, the ShardConn serves as the node's fabric port.
func (s *ShardConn) Accept() (fabric.Hello, error) {
	h, ok := <-s.helloCh
	if !ok {
		return fabric.Hello{}, fmt.Errorf("tcpgob: listener closed before a coordinator connected")
	}
	return h, nil
}

func (s *ShardConn) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.helloOnce.Do(func() { close(s.helloCh) })
			return
		}
		go s.handleConn(newLink(conn))
	}
}

// handleConn demultiplexes one inbound connection: the first frame names
// the dialer (coordinator session or peer transfer stream), the rest is
// that stream's traffic.
func (s *ShardConn) handleConn(l *link) {
	first, err := l.read()
	if err != nil {
		l.conn.Close()
		return
	}
	switch first.Kind {
	case kHelloCoord:
		h := first.Hello
		if h.Shard != s.shard || (s.shards > 0 && h.Shards != s.shards) {
			// A session for a different position than this daemon was
			// started for: refuse loudly rather than corrupt ownership.
			l.conn.Close()
			return
		}
		// Install the session state inside the once: only the first (real)
		// coordinator may touch it — a later duplicate must not hijack the
		// live session's retire/ack path — and it must be fully installed
		// before Accept can return the Hello, or a fast node could start
		// forwarding walkers against a nil peer table.
		delivered := false
		s.helloOnce.Do(func() {
			s.coordMu.Lock()
			s.coord = l
			s.coordMu.Unlock()
			s.peerMu.Lock()
			s.peerAddrs = h.Peers
			s.peerMu.Unlock()
			s.helloCh <- h
			delivered = true
		})
		if !delivered {
			// Second coordinator: single-session semantics.
			l.conn.Close()
			return
		}
		s.readCoord(l)
	case kHelloPeer:
		for {
			f, err := l.read()
			if err != nil || f.Kind != kWalker {
				l.conn.Close()
				return
			}
			s.walkers.Push(&f.Walker)
		}
	default:
		l.conn.Close()
	}
}

// readCoord drains the coordinator stream until shutdown or EOF, either
// of which ends the session: the local mailboxes close (drain-then-stop)
// so the node's loops wind down.
func (s *ShardConn) readCoord(l *link) {
	for {
		f, err := l.read()
		if err != nil {
			s.sessionDown()
			return
		}
		switch f.Kind {
		case kWalker:
			s.walkers.Push(&f.Walker)
		case kUpdates:
			s.ingests.Push(&fabric.Ingest{Ups: f.Ups})
		case kBarrier:
			in := f.Ingest
			s.ingests.Push(&in)
		case kShutdown:
			s.sessionDown()
			return
		}
	}
}

func (s *ShardConn) sessionDown() {
	s.downOnce.Do(func() {
		s.walkers.Close()
		s.ingests.Close()
	})
}

// Shard returns this daemon's shard index.
func (s *ShardConn) Shard() int { return s.shard }

// NextWalker pops the next inbound walker.
func (s *ShardConn) NextWalker() (*fabric.Walker, bool) { return s.walkers.Pop() }

// NextIngest pops the next ingest-stream element.
func (s *ShardConn) NextIngest() (*fabric.Ingest, bool) { return s.ingests.Pop() }

// peerLink returns (dialing lazily) the transfer stream toward shard dst.
func (s *ShardConn) peerLink(dst int) (*link, error) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if l, ok := s.peers[dst]; ok {
		return l, nil
	}
	if dst < 0 || dst >= len(s.peerAddrs) {
		return nil, fmt.Errorf("tcpgob: no peer address for shard %d", dst)
	}
	conn, err := net.Dial("tcp", s.peerAddrs[dst])
	if err != nil {
		return nil, fmt.Errorf("tcpgob: dialing peer shard %d: %w", dst, err)
	}
	l := newLink(conn)
	if err := l.write(&frame{Kind: kHelloPeer, From: s.shard}); err != nil {
		conn.Close()
		return nil, err
	}
	s.peers[dst] = l
	return l, nil
}

// ForwardWalker hands a walker to peer shard dst.
func (s *ShardConn) ForwardWalker(dst int, w *fabric.Walker) error {
	l, err := s.peerLink(dst)
	if err != nil {
		return err
	}
	return l.write(&frame{Kind: kWalker, Walker: *w})
}

func (s *ShardConn) coordLink() (*link, error) {
	s.coordMu.Lock()
	defer s.coordMu.Unlock()
	if s.coord == nil {
		return nil, fmt.Errorf("tcpgob: no coordinator session")
	}
	return s.coord, nil
}

// Retire sends a finished walker back to the coordinator.
func (s *ShardConn) Retire(w *fabric.Walker) error {
	l, err := s.coordLink()
	if err != nil {
		return err
	}
	return l.write(&frame{Kind: kRetire, Walker: *w})
}

// Ack sends a barrier acknowledgement to the coordinator.
func (s *ShardConn) Ack(a *fabric.Ack) error {
	l, err := s.coordLink()
	if err != nil {
		return err
	}
	return l.write(&frame{Kind: kAck, Ack: *a})
}

// Close releases the daemon's end: peer streams, the coordinator
// connection (whose EOF is the shard-done signal the coordinator's event
// stream waits for), and the listener. Idempotent.
func (s *ShardConn) Close() error {
	s.closeOnce.Do(func() {
		s.sessionDown()
		s.peerMu.Lock()
		for _, l := range s.peers {
			l.conn.Close()
		}
		s.peerMu.Unlock()
		s.coordMu.Lock()
		if s.coord != nil {
			s.coord.conn.Close()
		}
		s.coordMu.Unlock()
		s.ln.Close()
		s.helloOnce.Do(func() { close(s.helloCh) })
	})
	return nil
}

// ---------------------------------------------------------------------------
// Coordinator side

// CoordConn is the coordinator's end of a session across a set of shard
// daemons. It implements fabric.CoordPort.
type CoordConn struct {
	links  []*link
	events *fabric.Mailbox[fabric.Event]

	mu      sync.Mutex
	readers int
	closed  bool
}

// Dial opens a session: it connects to every daemon address in shard
// order and sends each its Hello (hello.Shard and hello.Peers are filled
// in per shard from addrs). The daemons must already be listening.
func Dial(addrs []string, hello fabric.Hello) (*CoordConn, error) {
	c := &CoordConn{
		links:   make([]*link, len(addrs)),
		events:  fabric.NewMailbox[fabric.Event](),
		readers: len(addrs),
	}
	hello.Shards = len(addrs)
	hello.Peers = addrs
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.abort(i)
			return nil, fmt.Errorf("tcpgob: dialing shard %d at %s: %w", i, addr, err)
		}
		l := newLink(conn)
		h := hello
		h.Shard = i
		if err := l.write(&frame{Kind: kHelloCoord, Hello: h}); err != nil {
			conn.Close()
			c.abort(i)
			return nil, fmt.Errorf("tcpgob: hello to shard %d: %w", i, err)
		}
		c.links[i] = l
	}
	for _, l := range c.links {
		go c.readShard(l)
	}
	return c, nil
}

// abort closes the links dialed so far ([0, n)) after a Dial failure.
func (c *CoordConn) abort(n int) {
	for i := 0; i < n; i++ {
		c.links[i].conn.Close()
	}
	c.events.Close()
}

// readShard pumps one daemon's retires and acks into the event stream.
// When the last reader exits (daemons close their connections after
// draining, post-shutdown), the event stream closes. A reader exiting
// *before* Close means a daemon died mid-session: the fabric is
// single-session, so the whole session is over — every link is closed so
// the remaining readers unblock and the coordinator's event loop can
// fail whatever is pending instead of waiting forever.
func (c *CoordConn) readShard(l *link) {
	defer func() {
		l.conn.Close()
		c.mu.Lock()
		c.readers--
		last := c.readers == 0
		closed := c.closed
		c.mu.Unlock()
		if !closed {
			for _, peer := range c.links {
				peer.conn.Close()
			}
		}
		if last {
			c.events.Close()
		}
	}()
	for {
		f, err := l.read()
		if err != nil {
			return
		}
		switch f.Kind {
		case kRetire:
			c.events.Push(fabric.Event{Kind: fabric.EvRetire, Walker: &f.Walker})
		case kAck:
			c.events.Push(fabric.Event{Kind: fabric.EvAck, Ack: &f.Ack})
		}
	}
}

// Shards returns the session's shard count.
func (c *CoordConn) Shards() int { return len(c.links) }

// LaunchWalker starts a walker on shard dst.
func (c *CoordConn) LaunchWalker(dst int, w *fabric.Walker) error {
	return c.links[dst].write(&frame{Kind: kWalker, Walker: *w})
}

// PublishUpdates appends a routed sub-batch to shard dst's ingest stream.
func (c *CoordConn) PublishUpdates(dst int, ups []graph.Update) error {
	return c.links[dst].write(&frame{Kind: kUpdates, Ups: ups})
}

// PublishBarrier appends a barrier token to every shard's ingest stream.
func (c *CoordConn) PublishBarrier(in fabric.Ingest) error {
	var first error
	for _, l := range c.links {
		if err := l.write(&frame{Kind: kBarrier, Ingest: in}); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NextEvent pops the next retire or ack.
func (c *CoordConn) NextEvent() (fabric.Event, bool) { return c.events.Pop() }

// Close ends the session: a shutdown frame goes to every daemon, which
// drains its queues, retires its last walkers, and closes its connection;
// the event stream ends when the last connection does. A read deadline
// bounds teardown against a wedged daemon (single-session semantics: no
// reconnects, no retries).
func (c *CoordConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	deadline := time.Now().Add(30 * time.Second)
	for _, l := range c.links {
		l.write(&frame{Kind: kShutdown})
		l.conn.SetReadDeadline(deadline)
	}
	return nil
}
