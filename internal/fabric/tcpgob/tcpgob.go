// Package tcpgob is the wire shard fabric: fabric messages travel as
// length-prefixed gob frames over TCP, one ordered full-duplex stream per
// peer pair.
//
// Topology. Each shard daemon owns one Listener. A write-coordinator
// dials it and opens a *session* by sending a Hello (partition geometry,
// engine spec, peer addresses, a session nonce); all coordinator→shard
// traffic (walker launches, routed update batches, barriers, plan
// broadcasts, shutdown) and all shard→coordinator traffic (retires,
// acks) flows on that connection. Shard-to-shard traffic — walker
// transfers and hub-view requests/replies — uses direct peer
// connections, dialed lazily on the first message toward each peer.
// *Write* sessions are sequential: a Listener serves one
// write-coordinator at a time but accepts a fresh session after the
// previous one tears down, which is what lets a daemon outlive its
// coordinators. Any number of *read* sessions (Hello.Role == RoleRead)
// may attach concurrently to the active write session: each reader link
// carries walker launches and view requests inbound, and the daemon
// routes that reader's retires, view replies, and relayed plan
// broadcasts back on the same link, fenced by the reader's own session
// nonce. Reader links live and die with the write session they attached
// to — a daemon with no write-coordinator has no plan authority to serve
// from. Peer streams announce the write session nonce on open, so a
// stray connection from a torn-down session is refused instead of
// leaking its walkers into the next session.
//
// Ordering. TCP gives each connection a FIFO byte stream and every
// connection has a single writer goroutine or locked writer, so the
// fabric ordering contract (per-shard publish order, barrier-after-
// batches) holds by construction. Each daemon demultiplexes inbound
// frames into unbounded mailboxes (walkers vs ingest vs views), so a
// crew blocked on an empty walker queue never stalls update delivery on
// the shared connection.
//
// Batching. Walker hand-offs toward one peer are coalesced: ForwardWalker
// enqueues, and a per-peer sender drains whatever is queued into a single
// kWalkerBatch frame. Under load this amortizes the per-frame cost
// (header, gob type preamble, syscall) across every walker queued behind
// the wire; an idle sender ships a lone walker immediately, so the
// latency cost of batching is zero. A walker the sender cannot deliver
// (dead peer) is retired to the coordinator as Failed — never silently
// dropped.
//
// Framing. Every frame is a 4-byte big-endian length followed by a
// self-contained gob encoding of one frame struct (a fresh encoder per
// frame: no cross-frame codec state, so a frame can be decoded in
// isolation and a torn stream fails loudly instead of desynchronizing).
package tcpgob

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/obs"
)

// maxFrame bounds a single frame's payload (sanity check against a torn
// or hostile stream; bootstrap batches and edge dumps are the big ones).
const maxFrame = 1 << 30

const (
	// defaultDialAttempts / defaultDialTimeout govern every outbound
	// connect (coordinator→daemon and lazy peer dials): each attempt is
	// bounded, and a refused connect is retried with jittered exponential
	// backoff. A daemon that is merely still starting (or restarting
	// after a crash) costs a short wait instead of a dead session or a
	// hand-off hanging on an unbounded blackhole connect.
	defaultDialAttempts = 5
	defaultDialTimeout  = 2 * time.Second
	// peerRedialAfter rate-limits replacing a dead peer stream with a
	// fresh dial: within the window hand-offs fail fast (and are retired
	// Failed for the coordinator to re-route); after it the next forward
	// tries a new connection — how peer links heal once a crashed
	// daemon returns.
	peerRedialAfter = 250 * time.Millisecond
	// blockRedeliverAttempts bounds re-sending a migration block whose
	// peer stream died before flushing it. Walkers stranded the same way
	// are retired Failed and re-routed, but a dropped block would wedge
	// its migration for good: SendBlock already returned success to the
	// donor, and the coordinator is waiting on exactly one MigrateDone
	// per block. Blocks are idempotent and epoch-guarded, so re-sending
	// through a replacement stream is always safe.
	blockRedeliverAttempts = 40
)

// dialRetry connects to addr with per-attempt timeouts and jittered
// exponential backoff between attempts (50ms doubling to a 1s cap, each
// wait uniformly stretched up to 2x). stop aborts the wait early.
func dialRetry(addr string, attempts int, timeout time.Duration, stop <-chan struct{}) (net.Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	backoff := 50 * time.Millisecond
	for a := 0; a < attempts; a++ {
		if a > 0 {
			d := backoff + time.Duration(rand.Int63n(int64(backoff)))
			if backoff < time.Second {
				backoff *= 2
			}
			select {
			case <-time.After(d):
			case <-stop:
				return nil, fmt.Errorf("tcpgob: dial %s aborted: %w", addr, lastErr)
			}
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// frame kinds.
const (
	kHelloCoord  = uint8(iota + 1) // coordinator session open (Hello)
	kHelloPeer                     // peer stream open (From + Session)
	kWalker                        // single walker launch or transfer
	kWalkerBatch                   // coalesced walker transfers
	kUpdates                       // routed ingest element (batch + watermarks)
	kBarrier                       // barrier token (Ingest)
	kRetire                        // finished walker, shard → coordinator
	kAck                           // barrier ack, shard → coordinator
	kViewReq                       // hub-view request, shard → peer
	kViewRep                       // hub-view reply, shard → peer
	kShutdown                      // session end, coordinator → shard
	kMigBlock                      // extracted ownership block, donor shard → recipient peer
	kMigDone                       // migration completion, recipient shard → coordinator
	kCredit                        // ingest flow-control report, shard → coordinator
	kBroadcast                     // plan/watermark broadcast, write-coordinator → shard → readers
)

// kindNames label the frame kinds for the wire metrics; index matches the
// kind constants above.
var kindNames = [...]string{
	kHelloCoord: "hello_coord", kHelloPeer: "hello_peer",
	kWalker: "walker", kWalkerBatch: "walker_batch",
	kUpdates: "updates", kBarrier: "barrier",
	kRetire: "retire", kAck: "ack",
	kViewReq: "view_req", kViewRep: "view_rep",
	kShutdown: "shutdown", kMigBlock: "mig_block", kMigDone: "mig_done",
	kCredit: "credit", kBroadcast: "broadcast",
}

// Per-kind frame/byte counters for both directions, resolved once at
// init so the per-frame cost is two atomic adds each way. Byte counts
// include the 4-byte length header — what actually crossed the wire.
var (
	txFrames, txBytes, rxFrames, rxBytes [len(kindNames)]*obs.Counter
)

func init() {
	for k := 1; k < len(kindNames); k++ {
		txFrames[k] = obs.C("bingo_fabric_frames_total", "fabric", "tcp", "dir", "tx", "kind", kindNames[k])
		txBytes[k] = obs.C("bingo_fabric_bytes_total", "fabric", "tcp", "dir", "tx", "kind", kindNames[k])
		rxFrames[k] = obs.C("bingo_fabric_frames_total", "fabric", "tcp", "dir", "rx", "kind", kindNames[k])
		rxBytes[k] = obs.C("bingo_fabric_bytes_total", "fabric", "tcp", "dir", "rx", "kind", kindNames[k])
	}
}

// frame is the single wire message shape. Value fields: gob omits
// zero-valued fields, so unused payloads cost nothing on the wire, and a
// nil pointer can never poison an encode.
type frame struct {
	Kind     uint8
	From     int    // kHelloPeer: sender shard index
	Session  uint64 // kHelloPeer: dialer's session nonce
	Hello    fabric.Hello
	Walker   fabric.Walker
	Walkers  []fabric.Walker // kWalkerBatch
	Ingest   fabric.Ingest   // kUpdates / kBarrier
	Ack      fabric.Ack
	ViewReq  fabric.ViewRequest
	ViewRep  fabric.ViewReply
	MigBlock fabric.MigrateBlock // kMigBlock
	MigDone  fabric.MigrateDone  // kMigDone
	Credit   fabric.Credit       // kCredit
	Bcast    fabric.Broadcast    // kBroadcast
}

// link is one connection with a locked writer. Reads are owned by exactly
// one goroutine and need no lock.
type link struct {
	conn net.Conn
	mu   sync.Mutex
	bw   *bufio.Writer
	br   *bufio.Reader
}

func newLink(conn net.Conn) *link {
	return &link{conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
}

// write encodes f as one length-prefixed frame and flushes it.
func (l *link) write(f *frame) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("tcpgob: encode frame kind %d: %w", f.Kind, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.bw.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if int(f.Kind) < len(kindNames) {
		txFrames[f.Kind].Inc()
		txBytes[f.Kind].Add(int64(buf.Len()) + 4)
	}
	return nil
}

// read decodes the next frame (blocking).
func (l *link) read() (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(l.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpgob: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(l.br, payload); err != nil {
		return nil, err
	}
	f := new(frame)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(f); err != nil {
		return nil, fmt.Errorf("tcpgob: decode frame: %w", err)
	}
	if int(f.Kind) < len(kindNames) && f.Kind > 0 {
		rxFrames[f.Kind].Inc()
		rxBytes[f.Kind].Add(int64(n) + 4)
	}
	return f, nil
}

// ---------------------------------------------------------------------------
// Shard daemon side

// Listener is a shard daemon's accept loop: it owns the listen socket
// and hands out one session ShardConn per *write*-coordinator Hello,
// serially; read-coordinator Hellos attach concurrently to the active
// write session instead of claiming the slot. It outlives sessions —
// after a write session's teardown the next coordinator Hello starts a
// fresh one.
type Listener struct {
	ln            net.Listener
	shard, shards int

	mu       sync.Mutex
	cur      *ShardConn    // active session, nil when idle
	watch    chan struct{} // closed and re-made whenever cur changes
	sessions chan *ShardConn
	done     chan struct{} // closed when the accept loop exits
	closed   bool
}

// Listen binds addr. shard/shards are this daemon's claimed position,
// validated against each coordinator's Hello (pass shards <= 0 to accept
// any count). Call Accept to block for the next session.
func Listen(addr string, shard, shards int) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		ln:       ln,
		shard:    shard,
		shards:   shards,
		watch:    make(chan struct{}),
		sessions: make(chan *ShardConn),
		done:     make(chan struct{}),
	}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound listen address (useful with ":0").
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Accept blocks until a coordinator opens a session and returns the
// session port plus its Hello. One session is active at a time: a
// coordinator dialing while another session is still open is refused.
func (l *Listener) Accept() (*ShardConn, fabric.Hello, error) {
	select {
	case sc := <-l.sessions:
		return sc, sc.hello, nil
	case <-l.done:
		return nil, fabric.Hello{}, fmt.Errorf("tcpgob: listener closed")
	}
}

// Close shuts the listener down: the accept loop exits and Accept fails.
// An active session is closed too.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	cur := l.cur
	l.mu.Unlock()
	l.ln.Close()
	if cur != nil {
		cur.Close()
	}
	return nil
}

// acceptLoop serves connections until the listener is closed. Only a
// closed listen socket ends it: a transient Accept error (a stray
// half-open connection, fd pressure) is retried with backoff, so a
// long-lived daemon survives malformed dials between sessions instead of
// silently dying with them.
func (l *Listener) acceptLoop() {
	backoff := 5 * time.Millisecond
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				close(l.done)
				return
			}
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 5 * time.Millisecond
		go l.handleConn(newLink(conn))
	}
}

// curChangedLocked wakes waitSession watchers; callers hold l.mu.
func (l *Listener) curChangedLocked() {
	close(l.watch)
	l.watch = make(chan struct{})
}

// sessionDone clears the active-session slot once sc has torn down,
// re-arming the listener for the next coordinator.
func (l *Listener) sessionDone(sc *ShardConn) {
	l.mu.Lock()
	if l.cur == sc {
		l.cur = nil
		l.curChangedLocked()
	}
	l.mu.Unlock()
}

// handleConn demultiplexes one inbound connection: the first frame names
// the dialer (coordinator session or peer stream), the rest is that
// stream's traffic.
func (l *Listener) handleConn(lk *link) {
	first, err := lk.read()
	if err != nil {
		lk.conn.Close()
		return
	}
	switch first.Kind {
	case kHelloCoord:
		h := first.Hello
		if h.Shard != l.shard || (l.shards > 0 && h.Shards != l.shards) {
			// A session for a different position than this daemon was
			// started for: refuse loudly rather than corrupt ownership.
			lk.conn.Close()
			return
		}
		if h.Role == fabric.RoleRead {
			// A read-coordinator attaching: it joins the active write
			// session (waiting briefly for one — a reader may dial while
			// the write session is still handshaking) instead of claiming
			// the session slot. Its link carries walker launches and view
			// requests inbound; retires, view replies, and relayed plan
			// broadcasts flow back on it, keyed by the reader's nonce.
			sc := l.waitAnySession(10 * time.Second)
			if sc == nil {
				lk.conn.Close()
				return
			}
			sc.serveReader(lk, h.Session)
			return
		}
		l.mu.Lock()
		if l.closed || l.cur != nil {
			// Sequential-write-session semantics: at most one
			// write-coordinator at a time. A dial during an active session
			// (or its teardown) is refused; the spurned coordinator
			// observes its event stream ending.
			l.mu.Unlock()
			lk.conn.Close()
			return
		}
		sc := newShardConn(l, lk, h)
		l.cur = sc
		l.curChangedLocked()
		l.mu.Unlock()
		select {
		case l.sessions <- sc:
		case <-l.done:
			// Listener shut down before anyone accepted the session.
			sc.Close()
			return
		}
		sc.readCoord(lk)
	case kHelloPeer:
		// The dialer learned this daemon's address and the session nonce
		// from the coordinator's Hello, so a matching session is being
		// (or has been) established here too — but this peer stream may
		// race ahead of the coordinator connection's own handler. Wait
		// for the session rather than refusing and silently dropping the
		// walker frames already in flight behind the hello; only a
		// stream from a torn-down session (nonce never to return) falls
		// through to the timeout.
		sc := l.waitSession(first.Session, 10*time.Second)
		if sc == nil {
			lk.conn.Close()
			return
		}
		sc.readPeer(lk)
	default:
		lk.conn.Close()
	}
}

// waitSession blocks until the active session carries the wanted nonce,
// the listener closes, or the timeout lapses. It waits on the listener's
// session-change watch channel — no polling: the waiter wakes exactly
// when cur changes.
func (l *Listener) waitSession(session uint64, timeout time.Duration) *ShardConn {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		l.mu.Lock()
		sc := l.cur
		w := l.watch
		closed := l.closed
		l.mu.Unlock()
		if sc != nil && sc.hello.Session == session {
			return sc
		}
		if closed {
			return nil
		}
		select {
		case <-w:
		case <-timer.C:
			return nil
		case <-l.done:
			return nil
		}
	}
}

// waitAnySession is waitSession without the nonce requirement: it blocks
// for whatever write session is (or becomes) active — the attach point
// for read-coordinators, which do not know the write session's nonce.
func (l *Listener) waitAnySession(timeout time.Duration) *ShardConn {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		l.mu.Lock()
		sc := l.cur
		w := l.watch
		closed := l.closed
		l.mu.Unlock()
		if sc != nil {
			return sc
		}
		if closed {
			return nil
		}
		select {
		case <-w:
		case <-timer.C:
			return nil
		case <-l.done:
			return nil
		}
	}
}

// ShardConn is a shard daemon's end of one serving session. It
// implements fabric.ShardPort. Sessions are created by Listener.Accept;
// Close tears this session down and re-arms the listener.
type ShardConn struct {
	owner *Listener
	hello fabric.Hello
	shard int

	walkers *fabric.Mailbox[*fabric.Walker]
	ingests *fabric.Mailbox[*fabric.Ingest]
	views   *fabric.Mailbox[*fabric.ViewMsg]
	blocks  *fabric.Mailbox[*fabric.MigrateBlock]

	// transferFrames/transferWalkers measure hand-off coalescing: how
	// many wire frames carried how many outbound walkers.
	transferFrames, transferWalkers atomic.Int64

	coord *link

	peerMu      sync.Mutex
	peers       map[int]*peerOut
	peersClosed bool

	// Attached read-coordinator links, keyed by reader session nonce,
	// plus the newest plan broadcast (seeded from the write Hello so a
	// reader attaching before the first broadcast still gets a usable
	// geometry snapshot).
	readerMu      sync.Mutex
	readerLinks   map[uint64]*link
	readersClosed bool
	lastBcast     fabric.Broadcast

	downOnce  sync.Once
	closeOnce sync.Once
}

func newShardConn(l *Listener, coord *link, h fabric.Hello) *ShardConn {
	return &ShardConn{
		owner:       l,
		hello:       h,
		shard:       l.shard,
		walkers:     fabric.NewMailbox[*fabric.Walker](),
		ingests:     fabric.NewMailbox[*fabric.Ingest](),
		views:       fabric.NewMailbox[*fabric.ViewMsg](),
		blocks:      fabric.NewMailbox[*fabric.MigrateBlock](),
		coord:       coord,
		peers:       map[int]*peerOut{},
		readerLinks: map[uint64]*link{},
		lastBcast: fabric.Broadcast{
			Epoch:     h.PlanEpoch,
			Overlay:   h.Overlay,
			DeadMask:  h.DeadMask,
			RangeSize: h.RangeSize,
			Replicas:  h.Replicas,
			Vertices:  h.NumVertices,
		},
	}
}

// readCoord drains the coordinator stream until shutdown or EOF, either
// of which ends the session: the local mailboxes close (drain-then-stop)
// so the node's loops wind down.
func (s *ShardConn) readCoord(l *link) {
	for {
		f, err := l.read()
		if err != nil {
			s.sessionDown()
			return
		}
		switch f.Kind {
		case kWalker:
			s.walkers.Push(&f.Walker)
		case kWalkerBatch:
			for i := range f.Walkers {
				s.walkers.Push(&f.Walkers[i])
			}
		case kUpdates, kBarrier:
			in := f.Ingest
			s.ingests.Push(&in)
		case kBroadcast:
			s.relayBroadcast(f.Bcast)
		case kShutdown:
			s.sessionDown()
			return
		}
	}
}

// relayBroadcast caches the write-coordinator's newest plan broadcast
// and fans it out to every attached reader link. A reader attached to N
// daemons receives each broadcast N times; broadcasts are full-state and
// sequence-stamped, so the duplicates are harmless.
func (s *ShardConn) relayBroadcast(b fabric.Broadcast) {
	s.readerMu.Lock()
	if b.Seq >= s.lastBcast.Seq {
		s.lastBcast = b
	}
	links := make([]*link, 0, len(s.readerLinks))
	for _, lk := range s.readerLinks {
		links = append(links, lk)
	}
	s.readerMu.Unlock()
	for _, lk := range links {
		lk.write(&frame{Kind: kBroadcast, Bcast: b}) //nolint:errcheck // dead reader links are reaped by their read loops
	}
}

// serveReader runs one attached read-coordinator link for its lifetime:
// register (so retires and view replies can route back), deliver the
// cached broadcast immediately, then pump inbound walker launches and
// view requests into the session streams with the reader's nonce stamped
// as their origin. EOF, a decode error, or a shutdown frame detaches the
// reader; the write session and every other reader are unaffected.
func (s *ShardConn) serveReader(lk *link, nonce uint64) {
	s.readerMu.Lock()
	if s.readersClosed {
		s.readerMu.Unlock()
		lk.conn.Close()
		return
	}
	s.readerLinks[nonce] = lk
	last := s.lastBcast
	s.readerMu.Unlock()
	if err := lk.write(&frame{Kind: kBroadcast, Bcast: last}); err != nil {
		s.dropReader(nonce, lk)
		return
	}
	for {
		f, err := lk.read()
		if err != nil {
			s.dropReader(nonce, lk)
			return
		}
		switch f.Kind {
		case kWalker:
			f.Walker.Origin = nonce
			s.walkers.Push(&f.Walker)
		case kWalkerBatch:
			for i := range f.Walkers {
				f.Walkers[i].Origin = nonce
				s.walkers.Push(&f.Walkers[i])
			}
		case kViewReq:
			rq := f.ViewReq
			rq.Origin = nonce
			s.views.Push(&fabric.ViewMsg{Req: &rq})
		case kShutdown:
			s.dropReader(nonce, lk)
			return
		default:
			s.dropReader(nonce, lk)
			return
		}
	}
}

// dropReader unregisters one reader link and closes its connection.
func (s *ShardConn) dropReader(nonce uint64, lk *link) {
	s.readerMu.Lock()
	if s.readerLinks[nonce] == lk {
		delete(s.readerLinks, nonce)
	}
	s.readerMu.Unlock()
	lk.conn.Close()
}

// readerLink returns the live link for a reader nonce (nil if detached).
func (s *ShardConn) readerLink(nonce uint64) *link {
	s.readerMu.Lock()
	defer s.readerMu.Unlock()
	return s.readerLinks[nonce]
}

// closeReaders detaches every reader link at session teardown: readers
// observe EOF on all their daemon links and end their event streams —
// they cannot outlive the write session whose plan they serve from.
func (s *ShardConn) closeReaders() {
	s.readerMu.Lock()
	s.readersClosed = true
	links := make([]*link, 0, len(s.readerLinks))
	for _, lk := range s.readerLinks {
		links = append(links, lk)
	}
	s.readerLinks = map[uint64]*link{}
	s.readerMu.Unlock()
	for _, lk := range links {
		lk.conn.Close()
	}
}

// readPeer drains one inbound peer stream (walker transfers and view
// traffic) for the life of the connection.
func (s *ShardConn) readPeer(l *link) {
	for {
		f, err := l.read()
		if err != nil {
			l.conn.Close()
			return
		}
		switch f.Kind {
		case kWalker:
			s.walkers.Push(&f.Walker)
		case kWalkerBatch:
			for i := range f.Walkers {
				s.walkers.Push(&f.Walkers[i])
			}
		case kViewReq:
			rq := f.ViewReq
			s.views.Push(&fabric.ViewMsg{Req: &rq})
		case kViewRep:
			rp := f.ViewRep
			s.views.Push(&fabric.ViewMsg{Rep: &rp})
		case kMigBlock:
			mb := f.MigBlock
			s.blocks.Push(&mb)
		default:
			l.conn.Close()
			return
		}
	}
}

func (s *ShardConn) sessionDown() {
	s.downOnce.Do(func() {
		s.walkers.Close()
		s.ingests.Close()
		s.views.Close()
		s.blocks.Close()
		s.closeReaders()
	})
}

// Shard returns this daemon's shard index.
func (s *ShardConn) Shard() int { return s.shard }

// NextWalker pops the next inbound walker.
func (s *ShardConn) NextWalker() (*fabric.Walker, bool) { return s.walkers.Pop() }

func (s *ShardConn) NextWalkers(dst []*fabric.Walker, max int) ([]*fabric.Walker, bool) {
	return s.walkers.PopUpTo(dst, max)
}

// NextIngest pops the next ingest-stream element.
func (s *ShardConn) NextIngest() (*fabric.Ingest, bool) { return s.ingests.Pop() }

// NextView pops the next view-stream element.
func (s *ShardConn) NextView() (*fabric.ViewMsg, bool) { return s.views.Pop() }

// NextBlock pops the next inbound migration block.
func (s *ShardConn) NextBlock() (*fabric.MigrateBlock, bool) { return s.blocks.Pop() }

// peerOut is the ordered outbound stream toward one peer: a queue, a
// single sender goroutine that dials lazily and coalesces queued walker
// hand-offs into batched frames, and a dead flag once the stream fails.
type peerOut struct {
	sc  *ShardConn
	dst int

	mu     sync.Mutex
	queue  []outMsg
	dead   bool
	diedAt time.Time
	err    error

	wake chan struct{}
	stop chan struct{}
}

// outMsg is one queued peer-bound message; exactly one of the pointer
// fields is set. mbTries counts how many dead streams a migration block
// has already been stranded on, bounding redelivery.
type outMsg struct {
	w       *fabric.Walker
	rq      *fabric.ViewRequest
	rp      *fabric.ViewReply
	mb      *fabric.MigrateBlock
	mbTries int
}

// peer returns (starting lazily) the outbound stream toward shard dst.
// A dead stream is replaced with a fresh dial once peerRedialAfter has
// elapsed since it died — within the window callers fail fast, after it
// the link heals if the peer daemon is back.
func (s *ShardConn) peer(dst int) (*peerOut, error) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if p, ok := s.peers[dst]; ok {
		p.mu.Lock()
		dead, since := p.dead, p.diedAt
		p.mu.Unlock()
		if !dead || time.Since(since) < peerRedialAfter || s.peersClosed {
			return p, nil
		}
		// The dead sender's loop has exited; release its teardown
		// watcher before dropping the map entry so nothing leaks across
		// the replacement.
		close(p.stop)
		delete(s.peers, dst)
	}
	if s.peersClosed {
		// The session is tearing down: a fresh sender would never be
		// stopped and would leak its goroutine and socket in a
		// multi-session daemon.
		return nil, fmt.Errorf("tcpgob: session closed")
	}
	if dst < 0 || dst >= len(s.hello.Peers) {
		return nil, fmt.Errorf("tcpgob: no peer address for shard %d", dst)
	}
	p := &peerOut{
		sc:   s,
		dst:  dst,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	s.peers[dst] = p
	go p.loop()
	return p, nil
}

func (p *peerOut) enqueue(m outMsg) error {
	p.mu.Lock()
	if p.dead {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.queue = append(p.queue, m)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return nil
}

// loop dials the peer, then drains the queue: consecutive queued walkers
// go out as one kWalkerBatch frame (a lone walker as a kWalker frame —
// identical bytes-on-wire behavior to the unbatched fabric when there is
// nothing to coalesce), view messages as their own frames. On any write
// failure the stream is dead: queued and future walkers are retired to
// the coordinator as Failed so their walks error out instead of hanging.
func (p *peerOut) loop() {
	conn, err := dialRetry(p.sc.hello.Peers[p.dst], defaultDialAttempts, defaultDialTimeout, p.stop)
	if err != nil {
		p.fail(fmt.Errorf("tcpgob: dialing peer shard %d: %w", p.dst, err))
		return
	}
	l := newLink(conn)
	if err := l.write(&frame{Kind: kHelloPeer, From: p.sc.shard, Session: p.sc.hello.Session}); err != nil {
		conn.Close()
		p.fail(err)
		return
	}
	go func() { // teardown: unblock a sender stuck in a write
		<-p.stop
		conn.Close()
	}()
	for {
		p.mu.Lock()
		q := p.queue
		p.queue = nil
		p.mu.Unlock()
		if len(q) == 0 {
			select {
			case <-p.wake:
				continue
			case <-p.stop:
				// Anything enqueued between the grab and the stop (and
				// anything enqueued later — fail marks the stream dead)
				// must still be retired Failed, per the ForwardWalker
				// contract: accepted walkers are never silently lost.
				p.fail(fmt.Errorf("tcpgob: session closed"))
				return
			}
		}
		i := 0
		for i < len(q) {
			var err error
			next := i + 1
			switch {
			case q[i].w != nil:
				// Coalesce the run of queued walkers into one frame.
				for next < len(q) && q[next].w != nil {
					next++
				}
				if next-i == 1 {
					err = l.write(&frame{Kind: kWalker, Walker: *q[i].w})
				} else {
					f := frame{Kind: kWalkerBatch, Walkers: make([]fabric.Walker, next-i)}
					for k := i; k < next; k++ {
						f.Walkers[k-i] = *q[k].w
					}
					err = l.write(&f)
				}
				if err == nil {
					p.sc.transferFrames.Add(1)
					p.sc.transferWalkers.Add(int64(next - i))
				}
			case q[i].rq != nil:
				err = l.write(&frame{Kind: kViewReq, ViewReq: *q[i].rq})
			case q[i].mb != nil:
				err = l.write(&frame{Kind: kMigBlock, MigBlock: *q[i].mb})
			default:
				err = l.write(&frame{Kind: kViewRep, ViewRep: *q[i].rp})
			}
			if err != nil {
				p.failWalkers(queuedWalkers(q[i:]))
				p.redeliverBlocks(queuedBlocks(q[i:]))
				p.fail(err)
				return
			}
			i = next
		}
	}
}

func queuedWalkers(q []outMsg) []*fabric.Walker {
	var ws []*fabric.Walker
	for _, m := range q {
		if m.w != nil {
			ws = append(ws, m.w)
		}
	}
	return ws
}

func queuedBlocks(q []outMsg) []outMsg {
	var mbs []outMsg
	for _, m := range q {
		if m.mb != nil {
			mbs = append(mbs, m)
		}
	}
	return mbs
}

// fail marks the stream dead and fails everything still queued.
func (p *peerOut) fail(err error) {
	p.mu.Lock()
	p.dead = true
	p.diedAt = time.Now()
	if p.err == nil {
		p.err = err
	}
	q := p.queue
	p.queue = nil
	p.mu.Unlock()
	p.failWalkers(queuedWalkers(q))
	p.redeliverBlocks(queuedBlocks(q))
}

// redeliverBlocks re-sends migration blocks stranded on this dead
// stream through a replacement once the redial window opens. The donor
// was already told the send succeeded, so dropping the block here would
// strand the migration: the recipient never installs, never reports
// MigrateDone, and — for a replica rejoin — the coordinator re-arms the
// attempt only on the next EvShardUp, which a healthy coordinator link
// never produces. This is exactly the kill -9 rejoin shape: the donor's
// peer stream to the victim dies with it, nothing writes to it while
// the victim's blocks are routed elsewhere, and the first frame that
// touches the zombie stream is the priming snapshot itself.
func (p *peerOut) redeliverBlocks(blocks []outMsg) {
	pending := make([]outMsg, 0, len(blocks))
	for _, m := range blocks {
		m.mbTries++
		if m.mbTries < blockRedeliverAttempts {
			pending = append(pending, m)
		}
	}
	if len(pending) == 0 {
		return
	}
	go func() {
		for len(pending) > 0 {
			// Sit out the redial window so peer() hands back a fresh
			// stream instead of this corpse.
			time.Sleep(peerRedialAfter + peerRedialAfter/4)
			rest := pending[:0]
			for _, m := range pending {
				np, err := p.sc.peer(p.dst)
				if err != nil {
					// Session torn down; the coordinator's death handling
					// owns any migration still in flight.
					return
				}
				if np.enqueue(m) != nil {
					// Replacement already dead too; wait out its window.
					m.mbTries++
					if m.mbTries < blockRedeliverAttempts {
						rest = append(rest, m)
					}
				}
			}
			pending = rest
		}
	}()
}

// failWalkers retires undeliverable walkers as Failed: the coordinator
// unblocks their callers with an error instead of waiting forever on a
// lost walk. If the retire path is down too the session is over and the
// coordinator's own death handling fails everything pending.
func (p *peerOut) failWalkers(ws []*fabric.Walker) {
	for _, w := range ws {
		w.Failed = true
		p.sc.Retire(w) //nolint:errcheck // see above
	}
}

// ForwardWalker hands a walker to peer shard dst: it enqueues on the
// peer's ordered sender, which coalesces transfers into batched frames.
// The walker must not be touched by the caller after the call.
func (s *ShardConn) ForwardWalker(dst int, w *fabric.Walker) error {
	p, err := s.peer(dst)
	if err != nil {
		return err
	}
	return p.enqueue(outMsg{w: w})
}

// RequestView asks peer shard dst for a hub view.
func (s *ShardConn) RequestView(dst int, rq *fabric.ViewRequest) error {
	p, err := s.peer(dst)
	if err != nil {
		return err
	}
	return p.enqueue(outMsg{rq: rq})
}

// ReplyView answers a peer's (or an attached reader's) view request: a
// reply carrying a reader origin goes back on that reader's own link; a
// detached reader's reply is dropped, never misdelivered.
func (s *ShardConn) ReplyView(dst int, rp *fabric.ViewReply) error {
	if rp.Origin != 0 {
		if lk := s.readerLink(rp.Origin); lk != nil {
			return lk.write(&frame{Kind: kViewRep, ViewRep: *rp})
		}
		return nil
	}
	p, err := s.peer(dst)
	if err != nil {
		return err
	}
	return p.enqueue(outMsg{rp: rp})
}

// SendBlock ships an extracted ownership block to peer shard dst on the
// same ordered stream walker transfers use. A block is never refused
// just because the current stream is dead: within the redial window the
// block goes straight onto the redelivery path, so a donor priming a
// freshly restarted replica cannot lose blocks to the window between
// its zombie stream failing and the replacement dial.
func (s *ShardConn) SendBlock(dst int, mb *fabric.MigrateBlock) error {
	p, err := s.peer(dst)
	if err != nil {
		return err
	}
	m := outMsg{mb: mb}
	if p.enqueue(m) != nil {
		p.redeliverBlocks([]outMsg{m})
	}
	return nil
}

// Migrated reports a completed block install to the coordinator.
func (s *ShardConn) Migrated(d *fabric.MigrateDone) error {
	return s.coord.write(&frame{Kind: kMigDone, MigDone: *d})
}

// Credit reports ingest-stream consumption to the coordinator. Credits
// are cumulative; one lost on a dying link is repaired by the next.
func (s *ShardConn) Credit(cr *fabric.Credit) error {
	return s.coord.write(&frame{Kind: kCredit, Credit: *cr})
}

// Retire sends a finished walker back to the coordinator that launched
// it: the write-coordinator link for Origin 0, the originating reader's
// link otherwise. A retire for a detached reader is dropped silently —
// nobody is waiting on that walk anymore.
func (s *ShardConn) Retire(w *fabric.Walker) error {
	if w.Origin != 0 {
		if lk := s.readerLink(w.Origin); lk != nil {
			return lk.write(&frame{Kind: kRetire, Walker: *w})
		}
		return nil
	}
	return s.coord.write(&frame{Kind: kRetire, Walker: *w})
}

// Ack sends a barrier acknowledgement to the coordinator.
func (s *ShardConn) Ack(a *fabric.Ack) error {
	return s.coord.write(&frame{Kind: kAck, Ack: *a})
}

// Close releases the session's end: peer streams stop, the coordinator
// connection closes (its EOF is the shard-done signal the coordinator's
// event stream waits for), and the owning listener is re-armed for the
// next session. Idempotent. The listener itself stays up — close it
// separately to stop serving.
func (s *ShardConn) Close() error {
	s.closeOnce.Do(func() {
		s.sessionDown()
		s.peerMu.Lock()
		s.peersClosed = true
		for _, p := range s.peers {
			close(p.stop)
		}
		s.peerMu.Unlock()
		// Re-arm the listener before the coordinator can observe this
		// connection's EOF: a coordinator that saw the session end and
		// immediately dials again must find the slot free.
		s.owner.sessionDone(s)
		s.coord.conn.Close()
	})
	return nil
}

// ---------------------------------------------------------------------------
// Coordinator side

// sessionSeq makes session nonces unique within a process; the time seed
// makes them unique across coordinator processes hitting one daemon.
var sessionSeq atomic.Uint64

func newSessionNonce() uint64 {
	return uint64(time.Now().UnixNano()) ^ (sessionSeq.Add(1) << 1) | 1
}

// DialConfig tunes the coordinator's connection behavior.
type DialConfig struct {
	// Attempts bounds the connect retries per address (default 5);
	// Timeout bounds each attempt (default 2s). Retries use jittered
	// exponential backoff, so a daemon started shortly *after* the
	// coordinator is found rather than fatal.
	Attempts int
	Timeout  time.Duration
	// Resilient keeps the session alive when a single daemon link dies:
	// instead of tearing the whole session down, the coordinator emits
	// EvShardDown for the lost shard, keeps serving on the surviving
	// links, and redials the address in the background, emitting
	// EvShardUp once the (restarted) daemon re-accepts the session.
	// Meant for replicated sessions, where the walk layer can promote
	// followers and re-prime a rejoiner; without replication a lost
	// shard is unrecoverable and the default fail-everything teardown
	// reports errors faster.
	Resilient bool
	// RedialInterval paces the background rejoin loop (default 500ms).
	RedialInterval time.Duration
}

func (d DialConfig) withDefaults() DialConfig {
	if d.Attempts <= 0 {
		d.Attempts = defaultDialAttempts
	}
	if d.Timeout <= 0 {
		d.Timeout = defaultDialTimeout
	}
	if d.RedialInterval <= 0 {
		d.RedialInterval = 500 * time.Millisecond
	}
	return d
}

// CoordConn is the coordinator's end of a session across a set of shard
// daemons. It implements fabric.CoordPort.
type CoordConn struct {
	addrs  []string
	hello  fabric.Hello
	cfg    DialConfig
	events *fabric.Mailbox[fabric.Event]
	stop   chan struct{}

	mu      sync.Mutex
	links   []*link
	readers int
	closed  bool
}

// Dial opens a session: it connects to every daemon address in shard
// order and sends each its Hello (hello.Shard, hello.Peers, and — unless
// the caller set one — hello.Session are filled in). Daemons need not be
// up yet: each connect retries with bounded backoff.
func Dial(addrs []string, hello fabric.Hello) (*CoordConn, error) {
	return DialWith(addrs, hello, DialConfig{})
}

// DialWith is Dial with explicit connection behavior.
func DialWith(addrs []string, hello fabric.Hello, cfg DialConfig) (*CoordConn, error) {
	cfg = cfg.withDefaults()
	c := &CoordConn{
		addrs:   addrs,
		cfg:     cfg,
		links:   make([]*link, len(addrs)),
		events:  fabric.NewMailbox[fabric.Event](),
		stop:    make(chan struct{}),
		readers: len(addrs),
	}
	hello.Shards = len(addrs)
	hello.Peers = addrs
	if hello.Session == 0 {
		hello.Session = newSessionNonce()
	}
	c.hello = hello
	for i, addr := range addrs {
		l, err := dialHello(addr, hello, i, cfg.Attempts, cfg.Timeout, c.stop)
		if err != nil {
			c.abort(i)
			return nil, err
		}
		c.links[i] = l
	}
	for i := range c.links {
		go c.readShard(i, c.links[i])
	}
	return c, nil
}

// dialHello connects to one daemon and opens the session on the link.
func dialHello(addr string, hello fabric.Hello, shard, attempts int, timeout time.Duration, stop <-chan struct{}) (*link, error) {
	conn, err := dialRetry(addr, attempts, timeout, stop)
	if err != nil {
		return nil, fmt.Errorf("tcpgob: dialing shard %d at %s: %w", shard, addr, err)
	}
	l := newLink(conn)
	h := hello
	h.Shard = shard
	if err := l.write(&frame{Kind: kHelloCoord, Hello: h}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcpgob: hello to shard %d: %w", shard, err)
	}
	return l, nil
}

// abort closes the links dialed so far ([0, n)) after a Dial failure.
func (c *CoordConn) abort(n int) {
	for i := 0; i < n; i++ {
		c.links[i].conn.Close()
	}
	c.events.Close()
}

// link returns the current link toward shard i (resilient sessions swap
// links on rejoin).
func (c *CoordConn) link(i int) *link {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.links[i]
}

// readShard pumps one daemon's coordinator-bound frames into the event
// stream.
//
// Default (non-resilient) sessions: a reader exiting before Close means
// a daemon died mid-session, and the whole session is over — every link
// is closed so the remaining readers unblock and the coordinator's event
// loop can fail whatever is pending instead of waiting forever; the last
// reader out closes the event stream.
//
// Resilient sessions: a lost link downs only its own shard — the reader
// emits EvShardDown and hands the address to a background rejoin loop,
// which dials until the daemon re-accepts the session and then emits
// EvShardUp with a fresh reader on the new link. The event stream closes
// only once the session is closed and the last reader has exited.
func (c *CoordConn) readShard(shard int, l *link) {
	defer func() {
		l.conn.Close()
		c.mu.Lock()
		c.readers--
		last := c.readers == 0
		closed := c.closed
		c.mu.Unlock()
		if !closed && !c.cfg.Resilient {
			c.mu.Lock()
			links := append([]*link(nil), c.links...)
			c.mu.Unlock()
			for _, peer := range links {
				peer.conn.Close()
			}
		}
		if last && (closed || !c.cfg.Resilient) {
			c.events.Close()
		}
		if !closed && c.cfg.Resilient {
			c.events.Push(fabric.Event{Kind: fabric.EvShardDown, Shard: shard})
			go c.rejoin(shard)
		}
	}()
	for {
		f, err := l.read()
		if err != nil {
			return
		}
		switch f.Kind {
		case kRetire:
			c.events.Push(fabric.Event{Kind: fabric.EvRetire, Walker: &f.Walker})
		case kAck:
			c.events.Push(fabric.Event{Kind: fabric.EvAck, Ack: &f.Ack})
		case kMigDone:
			c.events.Push(fabric.Event{Kind: fabric.EvMigrated, Done: &f.MigDone})
		case kCredit:
			c.events.Push(fabric.Event{Kind: fabric.EvCredit, Credit: &f.Credit})
		}
	}
}

// rejoin redials one lost daemon until it re-accepts the session (same
// nonce, so peers' healing transfer streams are admitted), then swaps
// the link in and announces EvShardUp. A restarted daemon starts from an
// empty engine; the walk layer re-primes it (plan sync + block copies)
// before marking it live again. A redial that lands while the daemon's
// old session is still tearing down is refused by the listener and shows
// up as an immediate EvShardDown again — the loop simply runs another
// round.
func (c *CoordConn) rejoin(shard int) {
	for {
		select {
		case <-c.stop:
			return
		case <-time.After(c.cfg.RedialInterval):
		}
		l, err := dialHello(c.addrs[shard], c.hello, shard, 1, c.cfg.Timeout, c.stop)
		if err != nil {
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			l.conn.Close()
			return
		}
		c.links[shard] = l
		c.readers++
		c.mu.Unlock()
		c.events.Push(fabric.Event{Kind: fabric.EvShardUp, Shard: shard})
		go c.readShard(shard, l)
		return
	}
}

// Shards returns the session's shard count.
func (c *CoordConn) Shards() int { return len(c.addrs) }

// LaunchWalker starts a walker on shard dst.
func (c *CoordConn) LaunchWalker(dst int, w *fabric.Walker) error {
	return c.link(dst).write(&frame{Kind: kWalker, Walker: *w})
}

// PublishUpdates appends a routed ingest element to shard dst's stream.
func (c *CoordConn) PublishUpdates(dst int, in fabric.Ingest) error {
	return c.link(dst).write(&frame{Kind: kUpdates, Ingest: in})
}

// PublishBarrier appends a barrier token to every shard's ingest stream.
func (c *CoordConn) PublishBarrier(in fabric.Ingest) error {
	var first error
	for i := range c.addrs {
		if err := c.link(i).write(&frame{Kind: kBarrier, Ingest: in}); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PublishBroadcast ships the plan/watermark broadcast to every daemon,
// which caches it and relays it to its attached readers. Best-effort: a
// dead link's broadcast is skipped — the daemon either rejoins (and the
// next broadcast repairs its cache) or the session is over anyway.
func (c *CoordConn) PublishBroadcast(b fabric.Broadcast) error {
	for i := range c.addrs {
		c.link(i).write(&frame{Kind: kBroadcast, Bcast: b}) //nolint:errcheck // best-effort fan-out; full-state broadcasts self-repair
	}
	return nil
}

// NextEvent pops the next retire or ack.
func (c *CoordConn) NextEvent() (fabric.Event, bool) { return c.events.Pop() }

// Close ends the session: a shutdown frame goes to every daemon, which
// drains its queues, retires its last walkers, and closes its connection;
// the event stream ends when the last connection does. A read deadline
// bounds teardown against a wedged daemon. Background rejoin loops stop.
func (c *CoordConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stop)
	links := append([]*link(nil), c.links...)
	none := c.readers == 0
	c.mu.Unlock()
	deadline := time.Now().Add(30 * time.Second)
	for _, l := range links {
		l.write(&frame{Kind: kShutdown}) //nolint:errcheck // best-effort teardown
		l.conn.SetReadDeadline(deadline) //nolint:errcheck // best-effort teardown
	}
	if none {
		// Every reader was already gone (resilient session with all
		// shards down): nobody is left to close the event stream.
		c.events.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Read-coordinator side

// ReaderConn is a read-coordinator's end of an attach across a shard
// set: one link per daemon, all announcing the same reader nonce with
// Hello.Role == RoleRead. It implements fabric.ReadPort. The attach
// requires an active write session on the daemons (each waits briefly
// for one); the reader's event stream ends when the write session does.
type ReaderConn struct {
	addrs  []string
	nonce  uint64
	events *fabric.Mailbox[fabric.Event]

	mu     sync.Mutex
	links  []*link
	pumps  int
	closed bool
}

// DialReader attaches a read-coordinator to every daemon address. The
// hello's Role and Session are filled in (a fresh reader nonce); the
// geometry fields may be left zero — the reader learns the live plan
// from the write session's broadcasts, the first of which each daemon
// sends immediately on attach.
func DialReader(addrs []string, hello fabric.Hello) (*ReaderConn, error) {
	return DialReaderWith(addrs, hello, DialConfig{})
}

// DialReaderWith is DialReader with explicit connection behavior.
func DialReaderWith(addrs []string, hello fabric.Hello, cfg DialConfig) (*ReaderConn, error) {
	cfg = cfg.withDefaults()
	r := &ReaderConn{
		addrs:  addrs,
		nonce:  newSessionNonce(),
		events: fabric.NewMailbox[fabric.Event](),
		links:  make([]*link, len(addrs)),
		pumps:  len(addrs),
	}
	hello.Role = fabric.RoleRead
	hello.Shards = len(addrs)
	hello.Session = r.nonce
	stop := make(chan struct{})
	defer close(stop)
	for i, addr := range addrs {
		l, err := dialHello(addr, hello, i, cfg.Attempts, cfg.Timeout, stop)
		if err != nil {
			for j := 0; j < i; j++ {
				r.links[j].conn.Close()
			}
			r.events.Close()
			return nil, err
		}
		r.links[i] = l
	}
	for i := range r.links {
		go r.readDaemon(r.links[i])
	}
	return r, nil
}

// readDaemon pumps one daemon's reader-bound frames into the event
// stream. Any link dying ends the whole attach (the common cause is the
// write session tearing down, which closes every reader link at once):
// all links close so the remaining pumps unblock, and the last pump out
// closes the event stream — the signal the reader service fails its
// pending queries on.
func (r *ReaderConn) readDaemon(l *link) {
	defer func() {
		l.conn.Close()
		r.mu.Lock()
		r.pumps--
		last := r.pumps == 0
		links := append([]*link(nil), r.links...)
		r.mu.Unlock()
		for _, peer := range links {
			peer.conn.Close()
		}
		if last {
			r.events.Close()
		}
	}()
	for {
		f, err := l.read()
		if err != nil {
			return
		}
		switch f.Kind {
		case kRetire:
			r.events.Push(fabric.Event{Kind: fabric.EvRetire, Walker: &f.Walker})
		case kViewRep:
			rp := f.ViewRep
			r.events.Push(fabric.Event{Kind: fabric.EvView, Rep: &rp})
		case kBroadcast:
			b := f.Bcast
			r.events.Push(fabric.Event{Kind: fabric.EvBroadcast, Bcast: &b})
		}
	}
}

// Shards returns the attach's shard count.
func (r *ReaderConn) Shards() int { return len(r.addrs) }

// link returns the link toward daemon i.
func (r *ReaderConn) link(i int) *link {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.links[i]
}

// LaunchWalker starts a walker on shard dst; the daemon stamps this
// reader's nonce as its origin (stamped here too for the inproc-parity
// of the walk layer's view of the walker it handed over).
func (r *ReaderConn) LaunchWalker(dst int, w *fabric.Walker) error {
	w.Origin = r.nonce
	return r.link(dst).write(&frame{Kind: kWalker, Walker: *w})
}

// RequestView asks shard dst for a hub view; the reply comes back as an
// EvView event on this reader's stream.
func (r *ReaderConn) RequestView(dst int, rq *fabric.ViewRequest) error {
	rq.Origin = r.nonce
	return r.link(dst).write(&frame{Kind: kViewReq, ViewReq: *rq})
}

// NextEvent pops the next reader-bound event.
func (r *ReaderConn) NextEvent() (fabric.Event, bool) { return r.events.Pop() }

// Close detaches the reader: a shutdown frame tells each daemon to
// unregister this reader's link, then the connections close and the
// event stream ends once the pumps drain. The write session and the
// shard set are untouched.
func (r *ReaderConn) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	links := append([]*link(nil), r.links...)
	r.mu.Unlock()
	for _, l := range links {
		l.write(&frame{Kind: kShutdown}) //nolint:errcheck // best-effort teardown
		l.conn.Close()
	}
	return nil
}
