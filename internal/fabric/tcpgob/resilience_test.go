// Regression tests for the transport's connection-robustness paths: the
// bounded dial retry (a daemon started after the coordinator dials must
// be found, not fatal) and the accept loop's tolerance of clients that
// never speak the protocol.
package tcpgob

import (
	"net"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
)

// TestDialFindsLateDaemon starts the daemon listener ~300ms after the
// coordinator begins dialing. The bare net.Dial this replaced failed
// instantly on the refused connect and killed the session; the retrying
// dial must ride its backoff into the live listener and open the session
// normally.
func TestDialFindsLateDaemon(t *testing.T) {
	// Reserve a port, then release it so the daemon can bind it late.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	accepted := make(chan *ShardConn, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		l, err := Listen(addr, 0, 1)
		if err != nil {
			t.Errorf("late Listen: %v", err)
			close(accepted)
			return
		}
		defer l.Close()
		sc, h, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			close(accepted)
			return
		}
		if h.NumVertices != 64 {
			t.Errorf("hello %+v reached the late daemon corrupted", h)
		}
		accepted <- sc
	}()

	coord, err := Dial([]string{addr}, fabric.Hello{RangeSize: 16, NumVertices: 64})
	if err != nil {
		t.Fatalf("Dial against a late daemon: %v", err)
	}
	sc, ok := <-accepted
	if !ok {
		t.Fatal("daemon side failed")
	}
	coord.Close()
	sc.Close()
}

// TestAcceptLoopSurvivesGarbageClients throws protocol garbage at a
// daemon's listener — a connect-and-slam, an oversized frame length, and
// junk bytes — and then requires a legitimate session to still open.
// Before the accept loop hardened, a single bad first frame could wedge
// or kill the daemon's accept path.
func TestAcceptLoopSurvivesGarbageClients(t *testing.T) {
	l, err := Listen("127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.Addr().String()

	for _, junk := range [][]byte{
		nil, // connect and slam shut
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // absurd frame length
		[]byte("GET / HTTP/1.1\r\n\r\n"),                 // wrong protocol entirely
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("garbage client connect: %v", err)
		}
		if len(junk) > 0 {
			conn.Write(junk)
		}
		conn.Close()
	}
	// Give the daemon a beat to chew on the garbage before the real dial.
	time.Sleep(50 * time.Millisecond)

	accepted := make(chan *ShardConn, 1)
	go func() {
		sc, _, err := l.Accept()
		if err != nil {
			t.Errorf("Accept after garbage clients: %v", err)
			close(accepted)
			return
		}
		accepted <- sc
	}()
	coord, err := Dial([]string{addr}, fabric.Hello{RangeSize: 16, NumVertices: 64})
	if err != nil {
		t.Fatalf("Dial after garbage clients: %v", err)
	}
	select {
	case sc, ok := <-accepted:
		if !ok {
			t.Fatal("daemon side failed")
		}
		sc.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("accept loop never surfaced the legitimate session")
	}
	coord.Close()
}
