package tcpgob

import (
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
)

// TestTransferBatching pins the coalescing satellite: a burst of walker
// hand-offs toward one peer must arrive complete and intact while
// traveling in (far) fewer frames than walkers — the per-frame cost
// (header, gob preamble, syscall) is amortized across whatever queued
// behind the wire. It also covers view traffic interleaved with the
// walker stream on the same ordered sender.
func TestTransferBatching(t *testing.T) {
	l0, err := Listen("127.0.0.1:0", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l0.Close()
	l1, err := Listen("127.0.0.1:0", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	addrs := []string{l0.Addr().String(), l1.Addr().String()}

	coord, err := Dial(addrs, fabric.Hello{RangeSize: 10, NumVertices: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	s0, _, err := l0.Accept()
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := l1.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	defer s1.Close()

	const walkers = 5000
	for i := 0; i < walkers; i++ {
		w := &fabric.Walker{ID: uint64(i + 1), Cur: 7, Left: 3, Steps: int64(i)}
		if err := s0.ForwardWalker(1, w); err != nil {
			t.Fatalf("forward %d: %v", i, err)
		}
		if i == walkers/2 {
			// A view request mid-burst rides the same ordered sender.
			if err := s0.RequestView(1, &fabric.ViewRequest{From: 0, Vertex: 7}); err != nil {
				t.Fatalf("view request: %v", err)
			}
		}
	}

	seen := make([]bool, walkers+1)
	for n := 0; n < walkers; n++ {
		w, ok := s1.NextWalker()
		if !ok {
			t.Fatalf("walker stream ended after %d of %d", n, walkers)
		}
		if w.ID == 0 || w.ID > walkers || seen[w.ID] {
			t.Fatalf("bad or duplicate walker %+v", w)
		}
		if w.Cur != 7 || w.Left != 3 || w.Steps != int64(w.ID-1) {
			t.Fatalf("walker %d corrupted in batch: %+v", w.ID, w)
		}
		seen[w.ID] = true
	}
	m, ok := s1.NextView()
	if !ok || m.Req == nil || m.Req.Vertex != 7 || m.Req.From != 0 {
		t.Fatalf("view request lost in the batched stream: ok=%v %+v", ok, m)
	}

	frames := s0.transferFrames.Load()
	sent := s0.transferWalkers.Load()
	if sent != walkers {
		t.Fatalf("sender accounted %d walkers, want %d", sent, walkers)
	}
	if frames >= walkers/2 {
		t.Fatalf("%d frames for %d walkers — hand-offs are not coalescing", frames, walkers)
	}
	t.Logf("%d walkers in %d frames (%.1f walkers/frame)", walkers, frames, float64(walkers)/float64(frames))

	// Teardown still drains cleanly with the senders in play.
	coord.Close()
	deadline := time.After(10 * time.Second)
	for {
		if _, ok := s0.NextWalker(); !ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("shard 0 walker stream did not close after shutdown")
		default:
		}
	}
}
