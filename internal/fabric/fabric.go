// Package fabric defines the shard interconnect of the sharded serving
// runtime: the message vocabulary (walker hand-offs, routed update
// batches, sync barriers, retire/ack replies) and the two port interfaces
// — one per shard node, one for the coordinator — that every transport
// implements.
//
// The in-process ShardedLiveService and the multi-process shard-daemon
// mode run the *same* walk/ingest logic over different fabrics:
//
//   - fabric/inproc carries messages over channels and unbounded
//     mailboxes inside one address space (the original ShardedLiveService
//     plumbing, extracted);
//   - fabric/tcpgob carries them as length-prefixed gob frames over TCP,
//     one ordered stream per peer pair, which is what lets
//     `bingowalk -shard-serve` host a shard in its own process.
//
// Every message is plain serializable data. In particular a Walker carries
// its RNG *state*, not a generator pointer — the walk's random stream
// continues draw-for-draw across an address-space boundary, which is what
// makes the in-process and multi-process topologies sample identically.
//
// Ordering contract (what the differential-equivalence argument needs):
//
//   - The coordinator→shard publish stream is FIFO: PublishUpdates calls
//     for one shard are applied in call order, and a PublishBarrier is
//     observed by a shard only after every batch published to it before
//     the barrier. Per-source update order is therefore preserved end to
//     end (single router upstream, single ingester downstream).
//   - Walker hand-offs need no cross-walker ordering: a walker is owned
//     by exactly one crew at a time, so its own hops are trivially
//     sequential and hops of distinct walkers commute.
//   - Retires and acks may arrive at the coordinator in any order across
//     shards; each carries the identity needed to route it.
package fabric

import (
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Walker is the serializable walk state handed between shards — the
// paper's "transferring walkers has the light burden of communication"
// (supplement §9.1) as a wire message. Exactly one crew owns a walker at
// a time; a hand-off transfers ownership whole.
type Walker struct {
	// ID routes the retire back to the coordinator's pending entry
	// (query reply or bulk-run tally).
	ID uint64
	// Cur is the walker's current vertex; Left the hops remaining.
	Cur  graph.VertexID
	Left int
	// Rng is the walk's serialized RNG stream; the receiving crew resumes
	// it exactly where the sender stopped.
	Rng xrand.State
	// Record makes crews append every visited vertex to Path (queries
	// always record; bulk walkers record when the run counts visits).
	// An explicit flag rather than Path != nil: gob does not distinguish
	// empty from nil slices on the wire.
	Record bool
	// Path is the recorded visit sequence (for queries, Path[0] is the
	// start vertex).
	Path []graph.VertexID
	// Steps, Transfers, and Local accumulate the walk's own telemetry:
	// hops taken, cross-shard hand-offs, and steps that stayed on the
	// owning shard.
	Steps, Transfers, Local int64
	// Failed marks a walk the fabric cut short (a hand-off toward a dead
	// peer): the retire must surface an error to the waiting caller, not
	// a truncated path posing as a complete walk.
	Failed bool
}

// Ingest is one element of a shard's ordered ingest stream: a routed
// sub-batch of updates, or (Ups nil, Barrier != 0) a sync barrier the
// shard acknowledges with an Ack carrying the same sequence number.
type Ingest struct {
	// Ups is the update sub-batch (every Src owned by the receiving
	// shard).
	Ups []graph.Update
	// Barrier is the barrier sequence number (0 = not a barrier).
	Barrier uint64
	// Dump asks the shard to attach its full edge snapshot to the
	// barrier's Ack — the coordinator's way to read back distributed
	// state for verification.
	Dump bool
}

// IsBarrier reports whether the element is a barrier token.
func (in *Ingest) IsBarrier() bool { return in.Barrier != 0 }

// Ack is a shard's acknowledgement of a barrier. Updates/Dropped are the
// shard's *cumulative* ingest tallies at the barrier point, so the latest
// ack per shard is a consistent snapshot of distributed ingest progress.
type Ack struct {
	Shard   int
	Seq     uint64
	Updates int64  // cumulative successfully applied update events
	Dropped int64  // cumulative dropped sub-batches
	Err     string // first ingest error observed ("" if none)
	// Vertices is the shard engine's current vertex-space size
	// (telemetry; shards grow independently under the feed).
	Vertices int
	// Edges is the shard's edge snapshot, attached only when the barrier
	// carried Dump.
	Edges []graph.Edge
}

// EventKind discriminates coordinator-bound events.
type EventKind uint8

const (
	// EvRetire delivers a finished walker.
	EvRetire EventKind = iota
	// EvAck delivers a barrier acknowledgement.
	EvAck
)

// Event is one element of the coordinator's inbound stream.
type Event struct {
	Kind   EventKind
	Walker *Walker // EvRetire
	Ack    *Ack    // EvAck
}

// ShardPort is one shard node's endpoint on the fabric.
//
// NextWalker and NextIngest block; they return ok=false — after draining
// everything already delivered — once the coordinator has closed the
// session. ForwardWalker/Retire/Ack must not be called after the node's
// loops have exited. Close releases the port and signals the coordinator
// that this shard has finished producing events; the node calls it after
// both its loops have exited.
type ShardPort interface {
	// Shard returns this node's shard index.
	Shard() int
	// NextWalker pops the next inbound walker (coordinator launches and
	// peer transfers share one stream; ordering between walkers is
	// irrelevant — see the package comment).
	NextWalker() (*Walker, bool)
	// NextIngest pops the next element of the ordered ingest stream.
	NextIngest() (*Ingest, bool)
	// ForwardWalker hands a walker to shard dst's crew. It must not
	// block indefinitely on a slow peer (unbounded delivery is what
	// keeps circular forwarding deadlock-free).
	ForwardWalker(dst int, w *Walker) error
	// Retire sends a finished walker back to the coordinator.
	Retire(w *Walker) error
	// Ack sends a barrier acknowledgement to the coordinator.
	Ack(a *Ack) error
	// Close signals that this shard is done producing events.
	Close() error
}

// CoordPort is the coordinator's endpoint on the fabric.
//
// LaunchWalker/PublishUpdates/PublishBarrier must not be called after
// Close. NextEvent blocks; it returns ok=false once every shard has
// closed its port after a Close. Close initiates session shutdown: each
// shard's NextWalker/NextIngest streams end once already-delivered items
// drain.
type CoordPort interface {
	// Shards returns the session's shard count.
	Shards() int
	// LaunchWalker starts a walker on shard dst.
	LaunchWalker(dst int, w *Walker) error
	// PublishUpdates appends a routed sub-batch to shard dst's ingest
	// stream (FIFO per shard; may block for backpressure).
	PublishUpdates(dst int, ups []graph.Update) error
	// PublishBarrier appends a barrier token to every shard's ingest
	// stream, ordered after all previously published batches.
	PublishBarrier(in Ingest) error
	// NextEvent pops the next coordinator-bound event.
	NextEvent() (Event, bool)
	// Close ends the session.
	Close() error
}

// Hello is the session spec the coordinator sends a shard daemon on
// connect: enough to reconstruct the partition geometry and build an
// empty, compatible engine. It lives here (not in internal/walk) because
// transports carry it and walk already imports fabric.
type Hello struct {
	// Shards and Shard are the partition count and the receiver's index
	// (the daemon sanity-checks them against its -shard K/N flags).
	Shards, Shard int
	// RangeSize is the ShardPlan block length (ownership geometry).
	RangeSize int
	// NumVertices sizes the shard engine's initial vertex space; the
	// feed grows it live like any other engine.
	NumVertices int
	// FloatBias selects the engine's float-bias mode (§4.3); update
	// batches carry FBias fractions only in this mode.
	FloatBias bool
	// Peers are the daemon addresses indexed by shard, for direct
	// shard-to-shard walker transfer.
	Peers []string
}
