// Package fabric defines the shard interconnect of the sharded serving
// runtime: the message vocabulary (walker hand-offs, routed update
// batches, sync barriers, retire/ack replies, plan broadcasts) and the
// port interfaces — one per shard node, one for the write-coordinator,
// one per attached read-coordinator — that every transport implements.
//
// The in-process ShardedLiveService and the multi-process shard-daemon
// mode run the *same* walk/ingest logic over different fabrics:
//
//   - fabric/inproc carries messages over channels and unbounded
//     mailboxes inside one address space (the original ShardedLiveService
//     plumbing, extracted);
//   - fabric/tcpgob carries them as length-prefixed gob frames over TCP,
//     one ordered stream per peer pair, which is what lets
//     `bingowalk -shard-serve` host a shard in its own process.
//
// Every message is plain serializable data. In particular a Walker carries
// its RNG *state*, not a generator pointer — the walk's random stream
// continues draw-for-draw across an address-space boundary, which is what
// makes the in-process and multi-process topologies sample identically.
//
// Ordering contract (what the differential-equivalence argument needs):
//
//   - The coordinator→shard publish stream is FIFO: PublishUpdates calls
//     for one shard are applied in call order, and a PublishBarrier is
//     observed by a shard only after every batch published to it before
//     the barrier. Per-source update order is therefore preserved end to
//     end (single router upstream, single ingester downstream).
//   - Walker hand-offs need no cross-walker ordering: a walker is owned
//     by exactly one crew at a time, so its own hops are trivially
//     sequential and hops of distinct walkers commute.
//   - Retires and acks may arrive at the coordinator in any order across
//     shards; each carries the identity needed to route it.
package fabric

import (
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// Walker is the serializable walk state handed between shards — the
// paper's "transferring walkers has the light burden of communication"
// (supplement §9.1) as a wire message. Exactly one crew owns a walker at
// a time; a hand-off transfers ownership whole.
type Walker struct {
	// ID routes the retire back to the coordinator's pending entry
	// (query reply or bulk-run tally).
	ID uint64
	// Cur is the walker's current vertex; Left the hops remaining.
	Cur  graph.VertexID
	Left int
	// Rng is the walk's serialized RNG stream; the receiving crew resumes
	// it exactly where the sender stopped.
	Rng xrand.State
	// Record makes crews append every visited vertex to Path (queries
	// always record; bulk walkers record when the run counts visits).
	// An explicit flag rather than Path != nil: gob does not distinguish
	// empty from nil slices on the wire.
	Record bool
	// Path is the recorded visit sequence (for queries, Path[0] is the
	// start vertex).
	Path []graph.VertexID
	// Steps, Transfers, Local, and Remote accumulate the walk's own
	// telemetry: hops taken, cross-shard hand-offs, steps that stayed on
	// the owning shard, and steps served from a cached remote hub view
	// (a hop at a non-owned vertex that did *not* cost a hand-off).
	Steps, Transfers, Local, Remote int64
	// Failed marks a walk the fabric cut short (a hand-off toward a dead
	// peer): the retire must surface an error to the waiting caller, not
	// a truncated path posing as a complete walk.
	Failed bool
	// Reroutes counts how many times the coordinator re-launched this
	// walk after a Failed retire (failover re-routing to a replica). It
	// bounds the retry loop: a walk that keeps landing on dead links
	// eventually fails for real instead of ping-ponging forever.
	Reroutes int
	// Origin is the session nonce of the coordinator that launched this
	// walker: 0 for the write-coordinator (the session owner), the
	// reader's attach nonce for a walker launched by a read-coordinator.
	// Shards preserve it across hand-offs, and the transport routes the
	// retire back to the originating coordinator — the field that lets N
	// readers share one shard set without mixing up each other's walks.
	Origin uint64
}

// Ingest is one element of a shard's ordered ingest stream: a routed
// sub-batch of updates, or (Ups nil, Barrier != 0) a sync barrier the
// shard acknowledges with an Ack carrying the same sequence number.
type Ingest struct {
	// Ups is the update sub-batch (every Src owned by the receiving
	// shard).
	Ups []graph.Update
	// Barrier is the barrier sequence number (0 = not a barrier).
	Barrier uint64
	// Dump asks the shard to attach its full edge snapshot to the
	// barrier's Ack — the coordinator's way to read back distributed
	// state for verification.
	Dump bool
	// Heat asks the shard to attach its per-block heat report (walk
	// steps served and degree mass per ownership block) to the barrier's
	// Ack — the observability hook the rebalancer drives.
	Heat bool
	// Offer, when Offer.Epoch != 0, instructs the receiving shard — the
	// current owner of Offer.Block — to extract that block's rows, stop
	// serving it, and ship the rows to Offer.To as a MigrateBlock. Its
	// position in the ingest stream is the migration's linearization
	// point on the donor: every update routed to the donor before the
	// offer is in the shipped rows, every later one is routed elsewhere.
	Offer MigrateOffer
	// Commit, when Commit.Epoch != 0, announces the new ownership of
	// Commit.Block to the receiving shard. The recipient named by
	// Commit.To installs the in-flight MigrateBlock before continuing
	// its ingest stream; every other shard just flips its plan overlay
	// and drops cached views of the moved block.
	Commit MigrateCommit
	// Boot marks a bootstrap element: Ups carries CSR snapshot rows
	// shipped at session start (or replica priming) rather than live feed
	// events. A shard applies them like any insert batch but does not
	// count them in its Updates/consumed ingest tallies — bootstrap rows
	// are initial state, not stream history, and watermark arithmetic
	// (view invalidation, migration FIFO checks) must see the same
	// stream positions whether a session bootstrapped from a snapshot or
	// replayed updates.
	Boot bool
	// Down, when Down.Epoch != 0, is a liveness control: the coordinator
	// observed shard Down.Shard die (Up false) or finish rejoining (Up
	// true) and every surviving shard flips its plan's dead-mask at
	// Down.Epoch. Its position in the ingest stream linearizes the
	// failover against routed updates exactly like a migration commit.
	Down ShardDown
	// Plan, when non-nil, carries a full ownership-plan sync: a rejoined
	// daemon starts from a fresh engine and needs the coordinator's
	// current epoch/overlay/dead-mask before any copy-commit or update
	// reaches it.
	Plan *PlanState
	// Watermarks is the coordinator's per-shard routed-update ledger
	// (cumulative update events published to each shard, this element
	// included), piggybacked on every ingest element. A cached remote
	// view from shard o stamped with Applied < Watermarks[o] may predate
	// an update already in flight to o and must be dropped — the
	// epoch-invalidation signal of the fabric-side hub cache. Routed
	// counts can only run ahead of applied counts, so the rule is
	// conservative: a view is only ever dropped early, never kept late
	// relative to what the ledger knows.
	Watermarks []int64
}

// IsBarrier reports whether the element is a barrier token.
func (in *Ingest) IsBarrier() bool { return in.Barrier != 0 }

// ShardDown is a liveness flip announced on the ingest streams: shard
// Shard is dead (Up false) or alive again (Up true) as of plan epoch
// Epoch. Zero Epoch means "no flip" (the Ingest discriminator).
type ShardDown struct {
	Shard int
	Epoch uint64
	Up    bool
}

// PlanState is a full ownership-plan synchronization, sent to a rejoined
// shard before any other traffic so it agrees with the fleet on
// epoch, overlay, and liveness.
type PlanState struct {
	Epoch    uint64
	Overlay  map[uint64]int
	DeadMask uint64
}

// Credit is a shard's flow-control report to the coordinator: Credited
// is the shard's cumulative count of routed update events (and bootstrap
// rows) it has consumed from its ingest stream. The coordinator's credit
// window blocks Feed once routed-minus-credited exceeds the window, which
// bounds every daemon's ingest queue end to end. Cumulative rather than
// incremental so that lost or reordered credits only delay the window,
// never corrupt it (the coordinator takes a monotonic max).
type Credit struct {
	Shard    int
	Credited int64
}

// ---------------------------------------------------------------------------
// Ownership migration (the live-rebalancing protocol)
//
// A migration moves one ShardPlan block from a donor shard to a recipient
// in three fabric messages, ordered by the per-shard FIFO ingest streams:
//
//	coordinator ──Offer──▶ donor          (donor's ingest stream)
//	coordinator ──Commit─▶ every shard    (each shard's ingest stream)
//	donor ──────MigrateBlock──▶ recipient (block stream, peer-to-peer)
//	recipient ──MigrateDone──▶ coordinator (event stream)
//
// The router flips its own routing table the instant it publishes the
// offer, so updates for the moved block enqueue behind the recipient's
// commit and are applied only after the block's rows are installed —
// per-source order is preserved across the ownership flip. Walkers are
// re-routed, never lost: a node that no longer (or does not yet) own a
// moved vertex forwards the walker to whatever owner its current plan
// names, and the bounded window in which donor and recipient disagree
// only costs extra hand-offs.

// MigrateOffer instructs a donor shard to give up one ownership block.
// Zero Epoch means "no offer" (the Ingest discriminator); real epochs
// start at 1.
type MigrateOffer struct {
	// Block is the ShardPlan block index being moved.
	Block uint64
	// To is the recipient shard.
	To int
	// Epoch is the plan epoch the migration creates.
	Epoch uint64
	// Copy asks the donor to *snapshot* the block instead of giving it
	// up: rows are extracted and shipped but the donor keeps serving them
	// and flips no ownership. Copy offers prime a rejoined replica from
	// a live group member (failback bootstrap); their epochs live in a
	// separate sequence from ownership flips.
	Copy bool
}

// MigrateCommit announces a block's new owner to a shard. Zero Epoch
// means "no commit".
type MigrateCommit struct {
	Block    uint64
	From, To int
	// Epoch is the plan epoch the flip installs.
	Epoch uint64
	// MinWatermark is the coordinator's routed-update count for the donor
	// at the instant the offer was published. The shipped block must
	// carry a donor watermark at least this high — a cheap end-to-end
	// check that the ingest stream's FIFO ordering actually held.
	MinWatermark int64
	// Copy marks the commit half of a copy offer: only the recipient
	// acts (install the shipped rows into an empty range), nobody flips
	// ownership, and the install replaces whatever the recipient held in
	// the range rather than requiring it empty.
	Copy bool
}

// MigrateBlock carries one block's extracted rows from donor to
// recipient: insert updates that reconstruct exactly the rows the donor
// held at extraction, in per-source adjacency order.
type MigrateBlock struct {
	Block uint64
	From  int
	Epoch uint64
	// Watermark is the donor's ingest-stream position (update events
	// consumed) at extraction; see MigrateCommit.MinWatermark.
	Watermark int64
	// Rows reconstruct the block's rows when applied to an empty range.
	Rows []graph.Update
}

// MigrateDone is the recipient's completion report, delivered to the
// coordinator on the event stream.
type MigrateDone struct {
	// Shard is the reporting (recipient) shard.
	Shard int
	Block uint64
	Epoch uint64
	// Edges is how many edges the installed block carried.
	Edges int64
	// Err is a non-empty description when the install failed; the
	// coordinator surfaces it through Err and fails the migration.
	Err string
	// Copy marks the completion of a copy install (replica priming), so
	// the coordinator tallies it against the rejoin instead of a
	// rebalancing migration.
	Copy bool
}

// BlockHeat is one ownership block's heat sample in a shard's report:
// how many walk steps this node served at the block's vertices since the
// session began (cumulative — the rebalancer differences successive
// reports) and, on the block's current owner, the block's live degree
// mass.
type BlockHeat struct {
	Block uint64
	// Steps is the node's cumulative sampled hops at vertices of this
	// block (local engine hops and cached remote-view hops alike).
	Steps int64
	// Edges is the block's live out-edge count on the reporting shard —
	// nonzero only on the block's owner.
	Edges int64
}

// Ack is a shard's acknowledgement of a barrier. Updates/Dropped are the
// shard's *cumulative* ingest tallies at the barrier point, so the latest
// ack per shard is a consistent snapshot of distributed ingest progress.
type Ack struct {
	Shard   int
	Seq     uint64
	Updates int64  // cumulative successfully applied update events
	Dropped int64  // cumulative dropped sub-batches
	Err     string // first ingest error observed ("" if none)
	// Vertices is the shard engine's current vertex-space size
	// (telemetry; shards grow independently under the feed).
	Vertices int
	// Steps is the node's cumulative sampled-hop count at the barrier
	// point — the per-shard load share a remote coordinator (and the
	// rebalancer) reads without touching the node.
	Steps int64
	// Heat is the shard's per-block heat report, attached only when the
	// barrier carried Heat.
	Heat []BlockHeat
	// Edges is the shard's edge snapshot, attached only when the barrier
	// carried Dump.
	Edges []graph.Edge
	// Cache is the node's cumulative hub-cache tallies at the barrier
	// point — how remote coordinators observe cache effectiveness
	// (in-process services read the node counters directly).
	Cache CacheTallies
	// Obs is the node-side metrics sample at the barrier point: the
	// shard's observability registry flattened for the wire, so the
	// coordinator's /metrics can re-expose every shard's tallies with a
	// shard label — the fleet-wide aggregation path.
	Obs obs.Sample
}

// CacheTallies are a shard node's cumulative hub-cache counters.
type CacheTallies struct {
	// LocalHits counts hops served lock-free from a crew's own view
	// cache; LocalStale counts cached views dropped on epoch mismatch.
	LocalHits, LocalStale int64
	// RemoteHits counts hops at non-owned vertices served from a peer's
	// shipped view instead of a walker hand-off; RemoteStale counts
	// remote views dropped by watermark invalidation.
	RemoteHits, RemoteStale int64
	// ViewRequests counts view fetches this node issued; ViewsServed
	// counts requests it answered for peers.
	ViewRequests, ViewsServed int64
}

// Add accumulates o into t.
func (t *CacheTallies) Add(o CacheTallies) {
	t.LocalHits += o.LocalHits
	t.LocalStale += o.LocalStale
	t.RemoteHits += o.RemoteHits
	t.RemoteStale += o.RemoteStale
	t.ViewRequests += o.ViewRequests
	t.ViewsServed += o.ViewsServed
}

// CorpusTallies are a standing-walk-corpus service's cumulative
// maintenance counters — the observability contract of the suffix
// resampler. Resamples counts dirty walks whose suffixes were regrown;
// ResampledSteps the hops those regrows actually sampled; FullWalkSteps
// the hops a per-update full recompute of every affected walk would have
// sampled instead (the counterfactual the amplification ratio
// ResampledSteps/FullWalkSteps is measured against). The bounded-staleness
// inputs ride barrier acks: the coordinator sums each shard's cumulative
// Ack.Updates stamp, and a refresh cycle only advances the corpus
// watermark once those stamps confirm its fed events applied.
type CorpusTallies struct {
	// Resamples counts walks truncated and regrown; ResampledSteps the
	// suffix hops sampled doing it.
	Resamples, ResampledSteps int64
	// FullWalkSteps is the full-recompute counterfactual: per applied
	// update event, every walk that visited the touched vertex re-walked
	// at full length.
	FullWalkSteps int64
	// RefreshLagMs is the maximum observed touch-to-refresh latency: the
	// age of the oldest coalesced touch when the refresh incorporating it
	// completed.
	RefreshLagMs int64
	// StaleServed counts queries served from a corpus lagging the feed
	// but inside the staleness bound; Fallbacks queries that blew the
	// bound (or missed the corpus) and were served as fresh walks.
	StaleServed, Fallbacks int64
}

// Add accumulates o into t (RefreshLagMs takes the max — it is a
// high-water mark, not a sum).
func (t *CorpusTallies) Add(o CorpusTallies) {
	t.Resamples += o.Resamples
	t.ResampledSteps += o.ResampledSteps
	t.FullWalkSteps += o.FullWalkSteps
	if o.RefreshLagMs > t.RefreshLagMs {
		t.RefreshLagMs = o.RefreshLagMs
	}
	t.StaleServed += o.StaleServed
	t.Fallbacks += o.Fallbacks
}

// ViewRequest asks a vertex's owner shard for a snapshot of its sampling
// state — the fabric-side hub-cache fill path. From names the requester
// so the reply can be routed back. Origin is 0 for a shard peer; a
// read-coordinator's request carries its attach nonce instead, and the
// owner copies it into the reply so the transport can route it back to
// the reader's link rather than a peer stream.
type ViewRequest struct {
	From   int
	Vertex graph.VertexID
	Origin uint64
}

// ViewReply answers a ViewRequest. Hub reports whether the owner deemed
// the vertex cacheable (at or above its hub-degree threshold); the view
// is attached only then. Applied stamps the owner's cumulative
// applied-update count at extraction — the version the requester checks
// against the coordinator's routed-update watermarks.
type ViewReply struct {
	From    int // owner shard
	Vertex  graph.VertexID
	Hub     bool
	Applied int64
	View    core.VertexView
	// Origin echoes the request's Origin: 0 routes the reply to a peer
	// shard's view stream, a reader nonce routes it to that reader.
	Origin uint64
}

// ViewMsg is one element of a shard's view stream: exactly one of Req
// (a peer wants this shard's view of a vertex it owns) or Rep (a peer
// answered this shard's request) is set.
type ViewMsg struct {
	Req *ViewRequest
	Rep *ViewReply
}

// Broadcast is the write-coordinator's periodic state announcement to
// every attached read-coordinator: the full routing-relevant snapshot —
// plan epoch, ownership overlay, liveness mask, partition geometry — plus
// the routed-update watermark vector and the applied stamp backing the
// readers' bounded-staleness contract.
//
// Broadcasts are full-state and idempotent: a receiver applies one iff
// Seq is at least the last sequence it saw, so duplicated delivery (a
// reader attached to N daemons receives each broadcast N times) and
// reordering across daemon links are both harmless. The consistency
// argument for readers is the same conservative direction the shard-side
// hub caches rely on: Watermarks are *routed* counts, which only ever run
// ahead of the owners' *applied* counts, so a reader pruning its cached
// views against them drops views early, never keeps them late.
type Broadcast struct {
	// Seq orders broadcasts within the write session (monotonic from 1).
	Seq uint64
	// Epoch, Overlay, and DeadMask mirror the write-coordinator's live
	// ShardPlan: readers rebuild their routing from them on every flip.
	Epoch    uint64
	Overlay  map[uint64]int
	DeadMask uint64
	// RangeSize, Replicas, and Vertices complete the partition geometry
	// (Vertices is the coordinator's current high-water vertex count —
	// the space grows live under the feed).
	RangeSize int
	Replicas  int
	Vertices  int
	// Watermarks is the routed-update ledger (cumulative events published
	// per shard); readers fold it into their remote-view caches exactly
	// like shard nodes fold the piggybacked ingest vector.
	Watermarks []int64
	// Applied is the write-coordinator's AppliedStamp() — the summed
	// cumulative applied-update acks — at broadcast time. Readers surface
	// it as their own staleness stamp.
	Applied int64
}

// EventKind discriminates coordinator-bound events.
type EventKind uint8

const (
	// EvRetire delivers a finished walker.
	EvRetire EventKind = iota
	// EvAck delivers a barrier acknowledgement.
	EvAck
	// EvMigrated delivers a migration completion report.
	EvMigrated
	// EvCredit delivers a shard's flow-control report.
	EvCredit
	// EvShardDown reports that the fabric lost the link to Event.Shard
	// (transport-detected death). Only transports that can observe a
	// single link die without losing the session emit it; the
	// coordinator reacts by promoting replicas and re-routing walkers.
	EvShardDown
	// EvShardUp reports that the link to Event.Shard came back (a
	// restarted daemon re-accepted the session). The coordinator reacts
	// by re-priming the shard's replica blocks.
	EvShardUp
	// EvBroadcast delivers a write-coordinator state broadcast to a
	// read-coordinator's event stream.
	EvBroadcast
	// EvView delivers a hub-view reply to a read-coordinator's event
	// stream (shard peers receive replies on their view streams instead).
	EvView
)

// Event is one element of the coordinator's inbound stream.
type Event struct {
	Kind   EventKind
	Walker *Walker      // EvRetire
	Ack    *Ack         // EvAck
	Done   *MigrateDone // EvMigrated
	Credit *Credit      // EvCredit
	Shard  int          // EvShardDown / EvShardUp
	Bcast  *Broadcast   // EvBroadcast
	Rep    *ViewReply   // EvView
}

// ShardPort is one shard node's endpoint on the fabric.
//
// NextWalker and NextIngest block; they return ok=false — after draining
// everything already delivered — once the coordinator has closed the
// session. ForwardWalker/Retire/Ack must not be called after the node's
// loops have exited. Close releases the port and signals the coordinator
// that this shard has finished producing events; the node calls it after
// both its loops have exited.
type ShardPort interface {
	// Shard returns this node's shard index.
	Shard() int
	// NextWalker pops the next inbound walker (coordinator launches and
	// peer transfers share one stream; ordering between walkers is
	// irrelevant — see the package comment).
	NextWalker() (*Walker, bool)
	// NextWalkers pops up to max inbound walkers in one queue round:
	// it blocks until at least one walker is available, appends the
	// drained walkers to dst, and returns it. The batch ingress feeds
	// the frontier stepping kernel — a crew that drains co-located
	// walkers together can amortize one lock/epoch validation over all
	// of them. Same end-of-stream semantics as NextWalker.
	NextWalkers(dst []*Walker, max int) ([]*Walker, bool)
	// NextIngest pops the next element of the ordered ingest stream.
	NextIngest() (*Ingest, bool)
	// ForwardWalker hands a walker to shard dst's crew. It must not
	// block indefinitely on a slow peer (unbounded delivery is what
	// keeps circular forwarding deadlock-free). A transport may defer
	// delivery (e.g. to coalesce hand-offs into batched frames); a
	// walker it accepts but cannot deliver must be retired as Failed so
	// the coordinator never waits on a silently lost walk.
	ForwardWalker(dst int, w *Walker) error
	// Retire sends a finished walker back to the coordinator.
	Retire(w *Walker) error
	// Ack sends a barrier acknowledgement to the coordinator.
	Ack(a *Ack) error
	// RequestView asks peer shard dst for a view of a vertex dst owns.
	// Delivery is asynchronous: the reply arrives on the requester's
	// view stream. Like ForwardWalker it must not block indefinitely.
	RequestView(dst int, rq *ViewRequest) error
	// ReplyView answers a peer's view request.
	ReplyView(dst int, rp *ViewReply) error
	// NextView pops the next element of this shard's view stream
	// (inbound requests and replies share it). It blocks, and returns
	// ok=false once the session has ended and the stream drained.
	NextView() (*ViewMsg, bool)
	// SendBlock ships an extracted ownership block to peer shard dst
	// (the donor half of a migration). Like ForwardWalker it must not
	// block indefinitely.
	SendBlock(dst int, mb *MigrateBlock) error
	// NextBlock pops the next inbound migration block. It blocks, and
	// returns ok=false once the session has ended and the stream
	// drained.
	NextBlock() (*MigrateBlock, bool)
	// Migrated reports a completed (or failed) block install to the
	// coordinator.
	Migrated(d *MigrateDone) error
	// Credit reports ingest-stream consumption to the coordinator (the
	// backpressure return path). Like Retire it must not block the
	// node's ingest loop; a transport may drop credits on a dying link —
	// they are cumulative, so the next one repairs the window.
	Credit(c *Credit) error
	// Close signals that this shard is done producing events.
	Close() error
}

// CoordPort is the coordinator's endpoint on the fabric.
//
// LaunchWalker/PublishUpdates/PublishBarrier must not be called after
// Close. NextEvent blocks; it returns ok=false once every shard has
// closed its port after a Close. Close initiates session shutdown: each
// shard's NextWalker/NextIngest streams end once already-delivered items
// drain.
type CoordPort interface {
	// Shards returns the session's shard count.
	Shards() int
	// LaunchWalker starts a walker on shard dst.
	LaunchWalker(dst int, w *Walker) error
	// PublishUpdates appends a routed ingest element (a sub-batch plus
	// the coordinator's watermark vector) to shard dst's ingest stream
	// (FIFO per shard; may block for backpressure).
	PublishUpdates(dst int, in Ingest) error
	// PublishBarrier appends a barrier token to every shard's ingest
	// stream, ordered after all previously published batches.
	PublishBarrier(in Ingest) error
	// PublishBroadcast announces the write-coordinator's current plan and
	// watermark state to every attached read-coordinator. Delivery is
	// best-effort fan-out (a reader that misses one catches up on the
	// next — broadcasts are full-state); a transport with no readers
	// attached may cache it for late attachers and otherwise do nothing.
	PublishBroadcast(b Broadcast) error
	// NextEvent pops the next coordinator-bound event.
	NextEvent() (Event, bool)
	// Close ends the session.
	Close() error
}

// ReadPort is a read-coordinator's endpoint on the fabric: the slice of
// CoordPort a query-serving frontend needs — walker launches, hub-view
// fetches, and an event stream carrying its own retires, view replies,
// and the write-coordinator's broadcasts — with none of the ingest
// surface. The transport stamps every outbound walker and view request
// with the reader's attach nonce (Walker.Origin / ViewRequest.Origin), so
// the walk layer above stays nonce-free.
//
// A ReadPort is valid only while a write session is active on the same
// shard set: readers never mediate ingest, so a shard set with no
// write-coordinator has no plan authority and the transport ends the
// reader's event stream (NextEvent returns ok=false), failing pending
// queries rather than serving from a fabric with no owner.
type ReadPort interface {
	// Shards returns the session's shard count.
	Shards() int
	// LaunchWalker starts a walker on shard dst; its retire comes back on
	// this reader's event stream.
	LaunchWalker(dst int, w *Walker) error
	// RequestView asks shard dst for a hub view of a vertex it owns; the
	// reply arrives as an EvView event.
	RequestView(dst int, rq *ViewRequest) error
	// NextEvent pops the next reader-bound event (EvRetire, EvView,
	// EvBroadcast). It blocks, and returns ok=false once the reader has
	// detached or the underlying write session ended.
	NextEvent() (Event, bool)
	// Close detaches the reader. The shard set and the write session are
	// unaffected; in-flight walkers this reader launched are dropped at
	// retire time.
	Close() error
}

// Session roles carried in Hello.Role. The zero value is the write role
// so every pre-role coordinator (and gob stream) keeps meaning what it
// always did.
const (
	// RoleWrite is the session owner: exactly one per shard set, owning
	// the ingest router, credit windows, plan epoch, and rebalancer.
	RoleWrite = ""
	// RoleRead attaches a read-coordinator to an already-running write
	// session: it launches walkers and fetches hub views but never
	// mediates ingest, and any number may attach concurrently.
	RoleRead = "read"
)

// Hello is the session spec a coordinator sends a shard daemon on
// connect: enough to reconstruct the partition geometry and build an
// empty, compatible engine. It lives here (not in internal/walk) because
// transports carry it and walk already imports fabric.
//
// Role splits sessions into one write-coordinator plus any number of
// concurrently attached read-coordinators; a reader's Hello is only a
// (Role, Session, Shard) announcement — the geometry fields are ignored,
// since the reader learns the live plan from the write session's
// broadcasts rather than asserting one of its own.
type Hello struct {
	// Role is the session role: RoleWrite ("" — the default, so old
	// clients and gob zero values stay write sessions) or RoleRead.
	Role string
	// Shards and Shard are the partition count and the receiver's index
	// (the daemon sanity-checks them against its -shard K/N flags).
	Shards, Shard int
	// RangeSize is the ShardPlan block length (ownership geometry).
	RangeSize int
	// PlanEpoch and Overlay carry the coordinator's current ownership
	// overlay (block index → owner shard) so a session can start from a
	// plan that prior rebalancing already reshaped. A fresh session has
	// epoch 0 and a nil overlay (pure block-cyclic ownership).
	PlanEpoch uint64
	Overlay   map[uint64]int
	// NumVertices sizes the shard engine's initial vertex space; the
	// feed grows it live like any other engine.
	NumVertices int
	// FloatBias selects the engine's float-bias mode (§4.3); update
	// batches carry FBias fractions only in this mode.
	FloatBias bool
	// Peers are the daemon addresses indexed by shard, for direct
	// shard-to-shard walker transfer.
	Peers []string
	// Session is the coordinator's nonce for this serving session. Peer
	// transfer streams announce it on open, so a multi-session daemon
	// can refuse strays from an earlier, torn-down session.
	Session uint64
	// Cache configures the daemons' hub caches (zero value = defaults,
	// cache on).
	Cache CacheSpec
	// Kernel selects the daemons' stepping-kernel mode: "sparse"
	// (per-walker), "dense" (per-vertex frontier batches), or "auto"
	// (density-based switching). Empty means auto; the walk layer parses
	// it (string on the wire keeps the fabric free of walk enums).
	Kernel string
	// Replicas is the block replication factor (0 or 1 = no replication):
	// each ownership block is held by Replicas consecutive shards and
	// survives Replicas-1 deaths.
	Replicas int
	// DeadMask is the coordinator's current liveness mask (bit i set =
	// shard i considered dead), so a daemon joining mid-failover starts
	// from the fleet's view rather than assuming everyone alive.
	DeadMask uint64
}

// CacheSpec configures the two hub-cache layers of a shard node. The
// zero value means "enabled with defaults"; the walk layer resolves the
// concrete defaults.
type CacheSpec struct {
	// Off disables both cache layers.
	Off bool
	// Size is each crew walker's local view-LRU capacity (0 = default).
	Size int
	// MinDegree is the hub admission threshold: only vertices of at
	// least this degree are cached or served as views (0 = default).
	MinDegree int
	// RemoteSize is the per-node remote-view cache capacity (0 =
	// default).
	RemoteSize int
	// RequestAfter is how many walker hand-offs a node observes toward
	// one non-owned vertex before requesting its view (0 = default).
	RequestAfter int
}
