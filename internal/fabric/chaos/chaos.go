// Package chaos is a fault-injecting in-process shard fabric for tests:
// the inproc topology (mailboxes everywhere) extended with per-link
// fault hooks — drop and delay on the coordinator↔shard streams — and
// whole-shard kill/restart, which is what lets a differential test
// exercise the failover protocol (replica promotion, walker re-routing,
// snapshot re-priming) without spawning and killing OS processes.
//
// Fidelity to a real crash: Kill(s) severs shard s the way a kill -9
// severs a daemon behind tcpgob. The node's inbound streams end (its
// loops drain what was already delivered, then exit, like a dying
// process's socket buffers), everything the killed incarnation still
// tries to send is discarded (a dead process sends nothing), peers and
// the coordinator get errors when they address it, and the coordinator
// observes an EvShardDown. Restart(s) is the replacement daemon: a fresh
// incarnation with empty streams, announced by EvShardUp — the caller
// runs a fresh node (fresh engine) on the returned port, exactly like a
// restarted `bingowalk -shard-serve` process accepting the session's
// rejoin dial.
//
// Fault hooks apply to the ordered coordinator→shard ingest stream
// (Drop discards an element, Delay postpones each element without
// reordering — a per-link pump goroutine preserves FIFO) and to the
// shard→coordinator event sends (Drop only). Dropping a routed update
// sub-batch diverges state by design — tests use Drop to target
// loss-tolerant traffic (credits are cumulative, acks are re-barriered)
// and Kill for everything else.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"github.com/bingo-rw/bingo/internal/fabric"
)

// Fault is one direction's fault spec on one link. The zero value passes
// everything through untouched.
type Fault struct {
	// Drop, when non-nil, is consulted per message; true discards it.
	Drop func(msg any) bool
	// Delay postpones each ingest element by this much (down direction
	// only; delivery order is preserved).
	Delay time.Duration
}

// link is one shard's attachment state: the current incarnation's
// streams plus liveness and fault configuration.
type link struct {
	gen  int
	dead bool
	down Fault // coordinator → shard (ingest stream)
	up   Fault // shard → coordinator (event sends)

	tx      *fabric.Mailbox[*fabric.Ingest] // pre-fault, coordinator side
	rx      *fabric.Mailbox[*fabric.Ingest] // post-fault, node side
	walkers *fabric.Mailbox[*fabric.Walker]
	views   *fabric.Mailbox[*fabric.ViewMsg]
	blocks  *fabric.Mailbox[*fabric.MigrateBlock]
}

// Fabric is a fault-injectable in-process shard interconnect. Create one
// per session; hand CoordPort to the coordinator and ShardPort(i) to
// shard i's node, then script faults from the test body.
type Fabric struct {
	shards int
	events *fabric.Mailbox[fabric.Event]

	mu        sync.Mutex
	links     []*link
	coordDone bool
	open      int // shard ports handed out and not yet closed
}

// New builds a chaos fabric for shards nodes, all initially alive and
// fault-free.
func New(shards int) *Fabric {
	f := &Fabric{
		shards: shards,
		events: fabric.NewMailbox[fabric.Event](),
		links:  make([]*link, shards),
		open:   shards,
	}
	for i := range f.links {
		f.links[i] = f.freshLink(i)
	}
	return f
}

// freshLink builds incarnation streams for shard s and starts its ingest
// pump. Caller holds f.mu (or is New).
func (f *Fabric) freshLink(s int) *link {
	l := &link{
		tx:      fabric.NewMailbox[*fabric.Ingest](),
		rx:      fabric.NewMailbox[*fabric.Ingest](),
		walkers: fabric.NewMailbox[*fabric.Walker](),
		views:   fabric.NewMailbox[*fabric.ViewMsg](),
		blocks:  fabric.NewMailbox[*fabric.MigrateBlock](),
	}
	go f.pump(s, l)
	return l
}

// pump moves ingest elements from the coordinator-side queue to the
// node-side queue, applying the link's down-direction fault per element.
// One goroutine per incarnation keeps the stream FIFO under Delay.
func (f *Fabric) pump(s int, l *link) {
	for {
		in, ok := l.tx.Pop()
		if !ok {
			l.rx.Close()
			return
		}
		f.mu.Lock()
		fault := l.down
		f.mu.Unlock()
		if fault.Drop != nil && fault.Drop(in) {
			continue
		}
		if fault.Delay > 0 {
			time.Sleep(fault.Delay)
		}
		l.rx.Push(in)
	}
}

// SetFault installs the fault specs for shard s's link (down =
// coordinator→shard ingest, up = shard→coordinator events). Zero-value
// faults clear the hooks.
func (f *Fabric) SetFault(s int, down, up Fault) {
	f.mu.Lock()
	f.links[s].down = down
	f.links[s].up = up
	f.mu.Unlock()
}

// Kill severs shard s like a process death: its current incarnation's
// streams end, its future sends are discarded, and the coordinator
// observes EvShardDown. Idempotent per incarnation.
func (f *Fabric) Kill(s int) {
	f.mu.Lock()
	l := f.links[s]
	if l.dead {
		f.mu.Unlock()
		return
	}
	l.dead = true
	f.mu.Unlock()
	l.tx.Close()
	l.walkers.Close()
	l.views.Close()
	l.blocks.Close()
	f.events.Push(fabric.Event{Kind: fabric.EvShardDown, Shard: s})
}

// Restart replaces a killed shard with a fresh incarnation (empty
// streams) and announces EvShardUp. The caller must run a fresh node —
// fresh engine, empty state — on the returned port, mirroring a
// restarted daemon process; the coordinator re-primes it over the
// fabric.
func (f *Fabric) Restart(s int) (fabric.ShardPort, error) {
	f.mu.Lock()
	if !f.links[s].dead {
		f.mu.Unlock()
		return nil, fmt.Errorf("chaos: restarting shard %d, which is alive", s)
	}
	if f.coordDone {
		f.mu.Unlock()
		return nil, fmt.Errorf("chaos: restarting shard %d after session end", s)
	}
	gen := f.links[s].gen + 1
	l := f.freshLink(s)
	l.gen = gen
	f.links[s] = l
	f.open++
	f.mu.Unlock()
	f.events.Push(fabric.Event{Kind: fabric.EvShardUp, Shard: s})
	return &shardPort{f: f, shard: s, gen: gen, l: l}, nil
}

// CoordPort returns the coordinator's endpoint.
func (f *Fabric) CoordPort() fabric.CoordPort { return (*coordPort)(f) }

// ShardPort returns shard k's endpoint for the current incarnation.
func (f *Fabric) ShardPort(k int) fabric.ShardPort {
	if k < 0 || k >= f.shards {
		panic(fmt.Sprintf("chaos: shard %d of %d", k, f.shards))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return &shardPort{f: f, shard: k, gen: f.links[k].gen, l: f.links[k]}
}

// shardDone records one shard port closing; the last one closes the
// event stream so the coordinator's event loop can drain and exit.
func (f *Fabric) shardDone() {
	f.mu.Lock()
	f.open--
	last := f.open == 0
	f.mu.Unlock()
	if last {
		f.events.Close()
	}
}

// deadErr reports addressing a severed link.
func deadErr(s int) error { return fmt.Errorf("chaos: link to shard %d is down", s) }

// ---------------------------------------------------------------------------
// Coordinator endpoint

type coordPort Fabric

func (c *coordPort) Shards() int { return c.shards }

func (c *coordPort) LaunchWalker(dst int, w *fabric.Walker) error {
	c.mu.Lock()
	l := c.links[dst]
	dead := l.dead
	c.mu.Unlock()
	if dead {
		return deadErr(dst)
	}
	l.walkers.Push(w)
	return nil
}

func (c *coordPort) PublishUpdates(dst int, in fabric.Ingest) error {
	c.mu.Lock()
	l := c.links[dst]
	dead := l.dead
	c.mu.Unlock()
	if dead {
		return deadErr(dst)
	}
	// A racing Kill may close tx between the check and the push; the
	// mailbox then drops silently — a frame lost on a dying socket.
	l.tx.Push(&in)
	return nil
}

func (c *coordPort) PublishBarrier(in fabric.Ingest) error {
	c.mu.Lock()
	links := append([]*link(nil), c.links...)
	c.mu.Unlock()
	for _, l := range links {
		tok := in
		// Dead links drop the push silently; the coordinator's death
		// handling force-acks barriers the dead shard will never answer.
		l.tx.Push(&tok)
	}
	return nil
}

// PublishBroadcast is a no-op: the chaos fabric exists to fault-inject
// the write session, and no read-coordinator ever attaches to it.
func (c *coordPort) PublishBroadcast(fabric.Broadcast) error { return nil }

func (c *coordPort) NextEvent() (fabric.Event, bool) { return c.events.Pop() }

// Close ends the session: every live incarnation's streams close, the
// nodes drain and exit, and the event stream closes once the last shard
// port does. Idempotent.
func (c *coordPort) Close() error {
	c.mu.Lock()
	done := c.coordDone
	c.coordDone = true
	links := append([]*link(nil), c.links...)
	c.mu.Unlock()
	if done {
		return nil
	}
	for _, l := range links {
		l.tx.Close()
		l.walkers.Close()
		l.views.Close()
		l.blocks.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shard endpoint

// shardPort is one incarnation's endpoint. Its receive streams are bound
// at creation (a killed incarnation's streams are closed, ending the
// node's loops); its sends check liveness so a killed node's dying
// gasps vanish like a dead process's would.
type shardPort struct {
	f     *Fabric
	shard int
	gen   int
	l     *link
	once  sync.Once
}

// stale reports whether this incarnation has been severed (killed, or
// superseded by a restart).
func (p *shardPort) stale() bool {
	p.f.mu.Lock()
	defer p.f.mu.Unlock()
	cur := p.f.links[p.shard]
	return cur.gen != p.gen || cur.dead
}

// sendEvent pushes a coordinator-bound event unless this incarnation is
// dead or the link's up-direction fault drops it.
func (p *shardPort) sendEvent(ev fabric.Event, msg any) error {
	p.f.mu.Lock()
	cur := p.f.links[p.shard]
	dead := cur.gen != p.gen || cur.dead
	drop := cur.up.Drop
	p.f.mu.Unlock()
	if dead {
		return nil // a killed process sends nothing
	}
	if drop != nil && drop(msg) {
		return nil
	}
	p.f.events.Push(ev)
	return nil
}

func (p *shardPort) Shard() int { return p.shard }

func (p *shardPort) NextWalker() (*fabric.Walker, bool) { return p.l.walkers.Pop() }
func (p *shardPort) NextWalkers(dst []*fabric.Walker, max int) ([]*fabric.Walker, bool) {
	return p.l.walkers.PopUpTo(dst, max)
}
func (p *shardPort) NextIngest() (*fabric.Ingest, bool)      { return p.l.rx.Pop() }
func (p *shardPort) NextView() (*fabric.ViewMsg, bool)       { return p.l.views.Pop() }
func (p *shardPort) NextBlock() (*fabric.MigrateBlock, bool) { return p.l.blocks.Pop() }

func (p *shardPort) ForwardWalker(dst int, w *fabric.Walker) error {
	if p.stale() {
		return deadErr(p.shard)
	}
	p.f.mu.Lock()
	l := p.f.links[dst]
	dead := l.dead
	p.f.mu.Unlock()
	if dead {
		return deadErr(dst)
	}
	l.walkers.Push(w)
	return nil
}

func (p *shardPort) RequestView(dst int, rq *fabric.ViewRequest) error {
	if p.stale() {
		return nil
	}
	p.f.mu.Lock()
	l := p.f.links[dst]
	dead := l.dead
	p.f.mu.Unlock()
	if dead {
		return nil // views are best-effort cache traffic
	}
	l.views.Push(&fabric.ViewMsg{Req: rq})
	return nil
}

func (p *shardPort) ReplyView(dst int, rp *fabric.ViewReply) error {
	if p.stale() {
		return nil
	}
	p.f.mu.Lock()
	l := p.f.links[dst]
	dead := l.dead
	p.f.mu.Unlock()
	if dead {
		return nil
	}
	l.views.Push(&fabric.ViewMsg{Rep: rp})
	return nil
}

func (p *shardPort) SendBlock(dst int, mb *fabric.MigrateBlock) error {
	if p.stale() {
		return deadErr(p.shard)
	}
	p.f.mu.Lock()
	l := p.f.links[dst]
	dead := l.dead
	p.f.mu.Unlock()
	if dead {
		return deadErr(dst)
	}
	l.blocks.Push(mb)
	return nil
}

func (p *shardPort) Retire(w *fabric.Walker) error {
	return p.sendEvent(fabric.Event{Kind: fabric.EvRetire, Walker: w}, w)
}

func (p *shardPort) Ack(a *fabric.Ack) error {
	return p.sendEvent(fabric.Event{Kind: fabric.EvAck, Ack: a}, a)
}

func (p *shardPort) Migrated(d *fabric.MigrateDone) error {
	return p.sendEvent(fabric.Event{Kind: fabric.EvMigrated, Done: d}, d)
}

func (p *shardPort) Credit(c *fabric.Credit) error {
	return p.sendEvent(fabric.Event{Kind: fabric.EvCredit, Credit: c}, c)
}

func (p *shardPort) Close() error {
	p.once.Do(p.f.shardDone)
	return nil
}
