package fabric

import "sync"

// Mailbox is an unbounded MPMC queue with drain-then-close semantics: Pop
// blocks until an item arrives or the mailbox closes, and items pushed
// before Close are always delivered. Pushes after Close are dropped.
// Unboundedness is the fabric's deadlock-freedom argument: delivering a
// walker or event never blocks the sender on a slow consumer. It mirrors
// the inbox the original in-process sharded service used, generalized so
// every transport's receive side can reuse it.
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	m := &Mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push appends an item; it is dropped if the mailbox is closed.
func (m *Mailbox[T]) Push(v T) {
	m.mu.Lock()
	if !m.closed {
		m.items = append(m.items, v)
	}
	m.mu.Unlock()
	m.cond.Signal()
}

// Pop blocks until an item is available or the mailbox is closed; items
// queued before Close are drained before ok=false is observed.
func (m *Mailbox[T]) Pop() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		var zero T
		return zero, false
	}
	v := m.items[0]
	var zero T
	m.items[0] = zero // release the reference
	m.items = m.items[1:]
	return v, true
}

// PopUpTo blocks until at least one item is available (or the mailbox is
// closed), then appends up to max queued items to dst and returns it.
// The batch drain is what lets a walker crew form a whole stepping
// frontier from one queue acquisition instead of popping walkers one
// lock round-trip at a time. Like Pop, items queued before Close are
// drained before ok=false is observed.
func (m *Mailbox[T]) PopUpTo(dst []T, max int) ([]T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return dst, false
	}
	n := len(m.items)
	if n > max {
		n = max
	}
	dst = append(dst, m.items[:n]...)
	var zero T
	for i := 0; i < n; i++ {
		m.items[i] = zero // release the references
	}
	m.items = m.items[n:]
	return dst, true
}

// Close marks the mailbox closed and wakes all poppers. Idempotent.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
