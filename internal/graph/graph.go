// Package graph defines the shared graph vocabulary of the repository:
// edges, snapshots (CSR), dynamic-update records, and edge-list text I/O.
//
// Following the paper's snapshot model (Definition 2.1), a dynamic graph is
// a base snapshot plus a sequence of update events; engines ingest a CSR
// snapshot at build time and then apply graph.Update streams.
package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// VertexID identifies a vertex. The engines support up to 2^32-1 vertices,
// which covers the paper's largest dataset (Twitter, 41.7 M vertices) with
// two orders of magnitude of headroom.
type VertexID = uint32

// Edge is a directed, weighted edge. Bias is the integer sampling bias
// (the fast path); FBias carries the fractional part in float-bias mode
// and is zero otherwise.
type Edge struct {
	Src, Dst VertexID
	Bias     uint64
	FBias    float64
}

// Op enumerates dynamic-graph event kinds.
type Op uint8

const (
	// OpInsert adds an edge.
	OpInsert Op = iota
	// OpDelete removes one instance of an edge.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Update is a single dynamic-graph event. For OpDelete the bias fields are
// ignored (the engine deletes one live instance of Src→Dst).
type Update struct {
	Op       Op
	Src, Dst VertexID
	Bias     uint64
	FBias    float64
}

// CSR is an immutable graph snapshot in compressed sparse row form.
type CSR struct {
	Offsets []int64 // len NumVertices+1
	Dst     []VertexID
	Bias    []uint64
	FBias   []float64 // nil unless float biases were supplied
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the edge count.
func (g *CSR) NumEdges() int64 { return int64(len(g.Dst)) }

// Degree returns the out-degree of u.
func (g *CSR) Degree(u VertexID) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Neighbors returns the destination slice of u. Callers must not mutate it.
func (g *CSR) Neighbors(u VertexID) []VertexID {
	return g.Dst[g.Offsets[u]:g.Offsets[u+1]]
}

// Biases returns the bias slice of u. Callers must not mutate it.
func (g *CSR) Biases(u VertexID) []uint64 {
	return g.Bias[g.Offsets[u]:g.Offsets[u+1]]
}

// FBiases returns the fractional-bias slice of u, or nil outside float mode.
func (g *CSR) FBiases(u VertexID) []float64 {
	if g.FBias == nil {
		return nil
	}
	return g.FBias[g.Offsets[u]:g.Offsets[u+1]]
}

// Stats summarizes a snapshot for Table 2.
type Stats struct {
	Vertices  int
	Edges     int64
	AvgDegree float64
	MaxDegree int
}

// ComputeStats scans the snapshot and returns its Table 2 row.
func (g *CSR) ComputeStats() Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	for u := 0; u < s.Vertices; u++ {
		d := g.Degree(VertexID(u))
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Vertices)
	}
	return s
}

// FromEdges builds a CSR snapshot over numVertices vertices. Edges are
// grouped by source; relative order within a source is preserved. Edges
// referencing vertices >= numVertices cause an error. If any edge carries a
// non-zero FBias the snapshot stores the float column.
func FromEdges(numVertices int, edges []Edge) (*CSR, error) {
	g := &CSR{
		Offsets: make([]int64, numVertices+1),
		Dst:     make([]VertexID, len(edges)),
		Bias:    make([]uint64, len(edges)),
	}
	hasF := false
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside vertex space %d", e.Src, e.Dst, numVertices)
		}
		g.Offsets[e.Src+1]++
		if e.FBias != 0 {
			hasF = true
		}
	}
	for i := 1; i <= numVertices; i++ {
		g.Offsets[i] += g.Offsets[i-1]
	}
	if hasF {
		g.FBias = make([]float64, len(edges))
	}
	cursor := make([]int64, numVertices)
	for _, e := range edges {
		p := g.Offsets[e.Src] + cursor[e.Src]
		cursor[e.Src]++
		g.Dst[p] = e.Dst
		g.Bias[p] = e.Bias
		if hasF {
			g.FBias[p] = e.FBias
		}
	}
	return g, nil
}

// Edges flattens the snapshot back into an edge slice.
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, len(g.Dst))
	for u := 0; u < g.NumVertices(); u++ {
		for p := g.Offsets[u]; p < g.Offsets[u+1]; p++ {
			e := Edge{Src: VertexID(u), Dst: g.Dst[p], Bias: g.Bias[p]}
			if g.FBias != nil {
				e.FBias = g.FBias[p]
			}
			out = append(out, e)
		}
	}
	return out
}

// Footprint returns the bytes held by the snapshot.
func (g *CSR) Footprint() int64 {
	b := int64(cap(g.Offsets))*8 + int64(cap(g.Dst))*4 + int64(cap(g.Bias))*8
	if g.FBias != nil {
		b += int64(cap(g.FBias)) * 8
	}
	return b
}

// WriteEdgeList writes the snapshot as "src dst bias" lines (bias printed
// as integer, or as float when the snapshot has fractional biases).
func (g *CSR) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.NumVertices(); u++ {
		for p := g.Offsets[u]; p < g.Offsets[u+1]; p++ {
			var err error
			if g.FBias != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", u, g.Dst[p], float64(g.Bias[p])+g.FBias[p])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u, g.Dst[p], g.Bias[p])
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses "src dst [bias]" lines. Missing biases default to 1.
// Fractional biases are split into integer and fractional parts. Lines
// starting with '#' or '%' are comments. The vertex space is sized to the
// maximum ID seen.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := VertexID(0)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [bias]', got %q", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", line, err)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst), Bias: 1}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("graph: line %d: bad bias %q", line, fields[2])
			}
			e.Bias = uint64(w)
			e.FBias = w - float64(e.Bias)
		}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, errors.New("graph: empty edge list")
	}
	return FromEdges(int(maxID)+1, edges)
}

// SortUpdatesBySrc stably sorts updates by source vertex, the CPU-side
// reordering step of the paper's batched update workflow (Figure 10(a)).
// Stability preserves the submission order of each vertex's events, which
// the paper's timestamp semantics require.
func SortUpdatesBySrc(ups []Update) {
	sort.SliceStable(ups, func(i, j int) bool { return ups[i].Src < ups[j].Src })
}
