package graph

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEdges() []Edge {
	return []Edge{
		{Src: 2, Dst: 1, Bias: 5},
		{Src: 2, Dst: 4, Bias: 4},
		{Src: 2, Dst: 5, Bias: 3},
		{Src: 0, Dst: 2, Bias: 1},
		{Src: 4, Dst: 2, Bias: 6},
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(6, sampleEdges())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 5 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(2) != 3 || g.Degree(1) != 0 || g.Degree(0) != 1 {
		t.Error("degrees wrong")
	}
	nb := g.Neighbors(2)
	bs := g.Biases(2)
	if len(nb) != 3 || nb[0] != 1 || bs[0] != 5 || nb[2] != 5 || bs[2] != 3 {
		t.Errorf("vertex 2 adjacency wrong: %v %v", nb, bs)
	}
	if g.FBiases(2) != nil {
		t.Error("float column present without float biases")
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{Src: 0, Dst: 5, Bias: 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(2, []Edge{{Src: 5, Dst: 0, Bias: 1}}); err == nil {
		t.Error("out-of-range src accepted")
	}
}

func TestFloatColumn(t *testing.T) {
	g, err := FromEdges(3, []Edge{{Src: 0, Dst: 1, Bias: 5, FBias: 0.54}})
	if err != nil {
		t.Fatal(err)
	}
	if g.FBias == nil || g.FBiases(0)[0] != 0.54 {
		t.Error("float biases lost")
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := FromEdges(6, sampleEdges())
	s := g.ComputeStats()
	if s.Vertices != 6 || s.Edges != 5 || s.MaxDegree != 3 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.AvgDegree < 0.83 || s.AvgDegree > 0.84 {
		t.Errorf("avg degree = %v", s.AvgDegree)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := sampleEdges()
	g, _ := FromEdges(6, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("edge count %d != %d", len(out), len(in))
	}
	// CSR groups by src but preserves within-src order; build multisets.
	seen := map[Edge]int{}
	for _, e := range in {
		seen[e]++
	}
	for _, e := range out {
		seen[e]--
	}
	for e, n := range seen {
		if n != 0 {
			t.Errorf("edge %+v count mismatch %d", e, n)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, _ := FromEdges(6, sampleEdges())
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
	if g2.Degree(2) != 3 || g2.Biases(2)[0] != 5 {
		t.Error("round trip lost data")
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	in := `# comment
% also comment
0 1 5
1 2
2 0 3.25
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Biases(1)[0] != 1 {
		t.Error("default bias not 1")
	}
	if g.Biases(2)[0] != 3 || g.FBiases(2)[0] != 0.25 {
		t.Error("float bias not split")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"0\n",         // too few fields
		"x 1\n",       // bad src
		"0 y\n",       // bad dst
		"0 1 -3\n",    // negative bias
		"0 1 zebra\n", // unparseable bias
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestSortUpdatesBySrcStable(t *testing.T) {
	ups := []Update{
		{Op: OpInsert, Src: 3, Dst: 1},
		{Op: OpInsert, Src: 1, Dst: 9},
		{Op: OpDelete, Src: 3, Dst: 1},
		{Op: OpInsert, Src: 1, Dst: 8},
	}
	SortUpdatesBySrc(ups)
	if ups[0].Src != 1 || ups[1].Src != 1 || ups[2].Src != 3 || ups[3].Src != 3 {
		t.Fatalf("not sorted: %+v", ups)
	}
	// Stability: vertex 1's insert 9 before insert 8; vertex 3's insert
	// before delete.
	if ups[0].Dst != 9 || ups[1].Dst != 8 {
		t.Error("order within src 1 not preserved")
	}
	if ups[2].Op != OpInsert || ups[3].Op != OpDelete {
		t.Error("order within src 3 not preserved")
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Error("Op strings wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown Op string wrong")
	}
}

func TestFootprint(t *testing.T) {
	g, _ := FromEdges(6, sampleEdges())
	if g.Footprint() <= 0 {
		t.Error("footprint should be positive")
	}
}
