package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Status providers: named callbacks whose results are embedded in the
// /statusz JSON document. Each serving mode registers its own *Stats
// snapshot function, so one scrape shows the registry and every service's
// structured counters side by side.
var (
	statusMu  sync.Mutex
	statusFns = map[string]func() any{}
)

// RegisterStatus installs a /statusz section under name, replacing any
// previous holder.
func RegisterStatus(name string, fn func() any) {
	statusMu.Lock()
	defer statusMu.Unlock()
	statusFns[name] = fn
}

// UnregisterStatus removes a /statusz section.
func UnregisterStatus(name string) {
	statusMu.Lock()
	defer statusMu.Unlock()
	delete(statusFns, name)
}

func statusSections() map[string]any {
	statusMu.Lock()
	names := make([]string, 0, len(statusFns))
	for n := range statusFns {
		names = append(names, n)
	}
	fns := make([]func() any, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, statusFns[n])
	}
	statusMu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = fns[i]()
	}
	return out
}

// Server is the debug/introspection HTTP listener: /metrics (Prometheus
// text exposition of the registry plus registered exporters), /statusz
// (JSON: registry snapshot + every registered status section), /eventz
// (journal tail, newest last), and the full net/http/pprof suite under
// /debug/pprof/ — a superset of the old bare -pprof listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr synchronously — a bad or taken address fails here, at
// startup, not from a background goroutine after serving has begun — and
// then serves the introspection plane until Close. reg and j default to
// the process-wide Default registry and Log journal when nil.
func Serve(addr string, reg *Registry, j *Journal) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	if j == nil {
		j = Log
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
		writeExporters(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := map[string]any{
			"now":     time.Now(),
			"metrics": reg.Snapshot(),
			"status":  statusSections(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck // best-effort debug endpoint
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // 0 = everything retained
		if s := r.URL.Query().Get("n"); s != "" {
			n, _ = strconv.Atoi(s)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(j.Tail(n)) //nolint:errcheck // best-effort debug endpoint
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // exits on Close; bind errors were surfaced above
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
