package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the log-scale histogram: bucket b
// holds observations whose nanosecond value v satisfies bits.Len64(v) == b,
// i.e. v in [2^(b-1), 2^b). Bucket 0 holds v == 0. 42 buckets cover up to
// ~73 minutes, far past any latency this system produces; larger values
// clamp into the last bucket.
const histBuckets = 42

// Histogram is a log-bucketed duration histogram: power-of-two bucket
// boundaries, atomic per-bucket counts, an exact sum. Recording is two
// atomic adds and a bits.Len64 — no locks, no allocation. Quantiles are
// derived at read time by interpolating within the crossing bucket, which
// is accurate to well under a factor of two — plenty for p50/p90/p99
// latency triage (the exact mean is Sum/Count). The zero value is ready
// to use; a nil receiver no-ops.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64 // total nanoseconds observed
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpper returns bucket b's exclusive upper bound in nanoseconds
// (bucket 0's is 1ns; the last bucket is unbounded and reports its
// nominal boundary).
func BucketUpper(b int) int64 {
	if b <= 0 {
		return 1
	}
	if b >= 63 {
		return 1<<62 + (1<<62 - 1)
	}
	return 1 << b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || !enabled.Load() {
		return
	}
	ns := int64(d)
	h.counts[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || !enabled.Load() {
		return
	}
	h.Observe(time.Since(t0))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total observed nanoseconds (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets copies the per-bucket counts (cumulative-free; raw per bucket).
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	if h == nil {
		return out
	}
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) as a
// duration: it finds the bucket where the cumulative count crosses
// q*total and interpolates linearly inside it. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	b := h.Buckets()
	var total int64
	for _, c := range b {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range b {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketUpper(i - 1)
			}
			hi := BucketUpper(i)
			// Position of the target within this bucket, interpolated.
			frac := float64(rank-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(BucketUpper(histBuckets - 1))
}
