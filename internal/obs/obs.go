// Package obs is the fleet observability core: a dependency-free metrics
// registry (atomic counters and gauges, log-bucketed latency histograms),
// a fixed-capacity structured event journal, and an HTTP introspection
// plane (/metrics, /statusz, /eventz + pprof).
//
// Design constraints, in order:
//
//  1. Hot-path instrumentation must be nearly free. A Counter.Add is one
//     atomic add behind one atomic enabled-check load; a Histogram.Observe
//     is a bits.Len64 and two atomic adds. Nothing on the record path
//     allocates, takes a lock, or formats a string. Handles are nil-safe
//     (a nil *Counter no-ops), so call sites never branch on "is
//     observability configured".
//  2. Metric handles are resolved once, at component construction, through
//     the registry (which does lock — that cost is paid per session, not
//     per event). The process-wide kill switch SetEnabled(false) turns
//     every record into a single atomic load + branch, which is what the
//     kernel overhead budget test pins.
//  3. The registry is serializable: Sample() flattens every counter,
//     gauge, and histogram (count + sum) into a gob-friendly list so
//     shard daemons can ship their tallies to the coordinator on barrier
//     acks, making the coordinator's /metrics fleet-wide.
//
// The package has no dependencies beyond the standard library and is
// imported by the fabric, so it must never import anything else from
// this module.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide record switch. Metrics still exist when
// disabled — handles stay valid, the registry keeps its names — but every
// record call returns after one atomic load. The bench's metrics-on/off
// delta flips this.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the process-wide record switch.
func SetEnabled(on bool) { enabled.Store(on) }

// On reports whether recording is enabled. Hot paths that must pay for a
// timestamp only when someone is listening gate their time.Now on it.
func On() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil receiver no-ops.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set level. The zero value is ready to use; a nil
// receiver no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge's current level.
func (g *Gauge) Set(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Max raises the gauge to n if n exceeds the current level.
func (g *Gauge) Max(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the gauge's current level (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric kind tags for snapshots and exposition.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// metric is one registered instrument: exactly one of c/g/h is non-nil.
type metric struct {
	name   string // metric family name (prometheus-safe)
	labels string // rendered label set `k="v",k2="v2"` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key is the registry identity: family name plus rendered labels.
func (m *metric) key() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// Registry holds an ordered set of named metrics. Handle resolution
// (Counter/Gauge/Histogram) is idempotent by name+labels: asking twice
// returns the same handle, so independent components can share a family
// without coordination. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	list  []*metric
	byKey map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

// renderLabels turns a flat k,v,k,v list into `k="v",k2="v2"`. Labels are
// rendered once at handle resolution — never on the record path.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	s := ""
	for i := 0; i+1 < len(kv); i += 2 {
		if s != "" {
			s += ","
		}
		s += kv[i] + `="` + kv[i+1] + `"`
	}
	return s
}

// lookup finds or creates the metric slot for name+labels.
func (r *Registry) lookup(name string, kv []string) *metric {
	labels := renderLabels(kv)
	key := name
	if labels != "" {
		key = name + "{" + labels + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		return m
	}
	m := &metric{name: name, labels: labels}
	r.byKey[key] = m
	r.list = append(r.list, m)
	return m
}

// Counter resolves (creating if absent) the counter name{kv...}.
// kv is a flat key,value,key,value list.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	m := r.lookup(name, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge resolves (creating if absent) the gauge name{kv...}.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	m := r.lookup(name, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram resolves (creating if absent) the duration histogram
// name{kv...}.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	m := r.lookup(name, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		m.h = &Histogram{}
	}
	return m.h
}

// MetricSnap is one metric's point-in-time reading.
type MetricSnap struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Kind   string `json:"kind"`
	Value  int64  `json:"value,omitempty"`  // counter / gauge
	Count  int64  `json:"count,omitempty"`  // histogram observations
	SumNs  int64  `json:"sum_ns,omitempty"` // histogram total
	P50Ns  int64  `json:"p50_ns,omitempty"` // derived quantiles
	P90Ns  int64  `json:"p90_ns,omitempty"`
	P99Ns  int64  `json:"p99_ns,omitempty"`
}

// Snapshot reads every registered metric, sorted by name then labels.
func (r *Registry) Snapshot() []MetricSnap {
	r.mu.Lock()
	list := append([]*metric(nil), r.list...)
	r.mu.Unlock()
	out := make([]MetricSnap, 0, len(list))
	for _, m := range list {
		s := MetricSnap{Name: m.name, Labels: m.labels}
		switch {
		case m.c != nil:
			s.Kind = kindCounter
			s.Value = m.c.Load()
		case m.g != nil:
			s.Kind = kindGauge
			s.Value = m.g.Load()
		case m.h != nil:
			s.Kind = kindHist
			s.Count = m.h.Count()
			s.SumNs = m.h.Sum()
			s.P50Ns = int64(m.h.Quantile(0.50))
			s.P90Ns = int64(m.h.Quantile(0.90))
			s.P99Ns = int64(m.h.Quantile(0.99))
		default:
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// Default is the process-wide registry every serving layer records into;
// Log is the process-wide event journal beside it. Shard daemons sample
// Default into their barrier acks, which is how one process's registry
// becomes a fleet's.
var (
	Default = NewRegistry()
	Log     = NewJournal(1024)
)

// C resolves a counter in the default registry.
func C(name string, kv ...string) *Counter { return Default.Counter(name, kv...) }

// G resolves a gauge in the default registry.
func G(name string, kv ...string) *Gauge { return Default.Gauge(name, kv...) }

// H resolves a histogram in the default registry.
func H(name string, kv ...string) *Histogram { return Default.Histogram(name, kv...) }
