package obs

import (
	"sync"
	"time"
)

// Event is one structured journal entry. Seq is assigned by the journal
// and strictly increases in append order, so "offer before commit" style
// control-plane ordering is checkable after the fact even once the ring
// has wrapped.
type Event struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Shard  int       `json:"shard"` // -1 when not shard-scoped
	Detail string    `json:"detail,omitempty"`
}

// Journal is a fixed-capacity ring of control-plane events: migration
// offers and commits, plan-epoch flips, shard deaths/promotions/rejoins,
// reader attach/detach, credit stalls, corpus refresh cycles. Appends are
// mutex-guarded — every recorded event is a control-path occurrence
// (per-migration, per-failover, per-refresh-cycle), never per-step or
// per-frame, so the lock is uncontended in practice. A nil journal
// no-ops.
type Journal struct {
	mu  sync.Mutex
	buf []Event
	cap int
	seq uint64
}

// NewJournal builds a journal holding the most recent capacity events.
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{cap: capacity}
}

// Record appends one event and returns its sequence number (0 on a nil
// journal or when recording is disabled).
func (j *Journal) Record(kind string, shard int, detail string) uint64 {
	if j == nil || !enabled.Load() {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e := Event{Seq: j.seq, At: time.Now(), Kind: kind, Shard: shard, Detail: detail}
	if len(j.buf) < j.cap {
		j.buf = append(j.buf, e)
	} else {
		copy(j.buf, j.buf[1:])
		j.buf[len(j.buf)-1] = e
	}
	return j.seq
}

// Seq returns the sequence number of the newest event (0 when empty).
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Tail returns up to n most recent events, oldest first. n <= 0 returns
// everything retained.
func (j *Journal) Tail(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > len(j.buf) {
		n = len(j.buf)
	}
	out := make([]Event, n)
	copy(out, j.buf[len(j.buf)-n:])
	return out
}

// Since returns the retained events with Seq > after, oldest first — the
// way tests assert ordering across a scripted window without clearing the
// process-global journal.
func (j *Journal) Since(after uint64) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for _, e := range j.buf {
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out
}

// Journal event kinds recorded by the serving layers. Collected here so
// scrapers and tests share one vocabulary.
const (
	EvMigrationOffer  = "migration.offer"
	EvMigrationCommit = "migration.commit"
	EvPlanFlip        = "plan.flip"
	EvShardDeath      = "shard.down"
	EvShardPromote    = "shard.promote"
	EvShardRejoin     = "shard.rejoin"
	EvReaderAttach    = "reader.attach"
	EvReaderDetach    = "reader.detach"
	EvCreditStall     = "credit.stall"
	EvCorpusRefresh   = "corpus.refresh"
)
