package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// KV is one flattened metric reading inside a Sample. Key is the full
// metric identity (family name plus rendered labels when present) so a
// receiver can re-expose it with an extra label merged in.
type KV struct {
	Key string
	Val int64
}

// Sample is a gob-friendly flattening of a registry: counters and gauges
// by value, histograms as <name>_count and <name>_sum_ns pairs. Shard
// daemons attach one to every barrier ack (fabric.Ack.Obs), which is how
// the write-coordinator's /metrics becomes fleet-wide without a second
// wire protocol.
type Sample struct {
	Counters []KV
}

// Sample flattens the registry's current state.
func (r *Registry) Sample() Sample {
	r.mu.Lock()
	list := append([]*metric(nil), r.list...)
	r.mu.Unlock()
	s := Sample{Counters: make([]KV, 0, len(list))}
	for _, m := range list {
		switch {
		case m.c != nil:
			s.Counters = append(s.Counters, KV{Key: m.key(), Val: m.c.Load()})
		case m.g != nil:
			s.Counters = append(s.Counters, KV{Key: m.key(), Val: m.g.Load()})
		case m.h != nil:
			s.Counters = append(s.Counters,
				KV{Key: withLabels(m.name+"_count", m.labels), Val: m.h.Count()},
				KV{Key: withLabels(m.name+"_sum_ns", m.labels), Val: m.h.Sum()})
		}
	}
	return s
}

// withLabels renders name{labels} (or bare name for an empty label set).
func withLabels(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// mergeLabel injects one extra label into a sample key: `n{a="b"}` plus
// shard=3 becomes `n{a="b",shard="3"}`; a bare name grows a label set.
func mergeLabel(key, label, value string) string {
	ins := label + `="` + value + `"`
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:len(key)-1] + "," + ins + "}"
	}
	return key + "{" + ins + "}"
}

// WriteSample re-exposes a remote sample in Prometheus text format with
// an extra label merged into every series — the coordinator writes each
// shard's latest ack sample with shard="<i>".
func WriteSample(w io.Writer, s Sample, label, value string) {
	for _, kv := range s.Counters {
		fmt.Fprintf(w, "%s %d\n", mergeLabel(kv.Key, label, value), kv.Val)
	}
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

// WritePrometheus renders the registry in the Prometheus text format:
// counters and gauges as bare series, histograms as cumulative _bucket
// series with `le` bounds in seconds plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	snaps := r.Snapshot()
	// TYPE lines once per family, in first-appearance order.
	typed := map[string]bool{}
	r.mu.Lock()
	list := append([]*metric(nil), r.list...)
	r.mu.Unlock()
	byKey := map[string]*metric{}
	for _, m := range list {
		byKey[withLabels(m.name, m.labels)] = m
	}
	for _, s := range snaps {
		m := byKey[withLabels(s.Name, s.Labels)]
		if m == nil {
			continue
		}
		if !typed[s.Name] {
			typed[s.Name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		switch s.Kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(w, "%s %d\n", withLabels(s.Name, s.Labels), s.Value)
		case kindHist:
			writePromHistogram(w, s.Name, s.Labels, m.h)
		}
	}
}

// writePromHistogram renders one histogram's cumulative buckets. Bounds
// are emitted in seconds (Prometheus convention for durations); only
// buckets at or below the highest occupied one are listed, plus +Inf.
func writePromHistogram(w io.Writer, name, labels string, h *Histogram) {
	b := h.Buckets()
	hi := 0
	for i, c := range b {
		if c > 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += b[i]
		le := fmt.Sprintf(`le="%g"`, float64(BucketUpper(i))/1e9)
		l := le
		if labels != "" {
			l = labels + "," + le
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, l, cum)
	}
	inf := `le="+Inf"`
	if labels != "" {
		inf = labels + "," + inf
	}
	total := h.Count()
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, inf, total)
	fmt.Fprintf(w, "%s %g\n", withLabels(name+"_sum", labels), float64(h.Sum())/1e9)
	fmt.Fprintf(w, "%s %d\n", withLabels(name+"_count", labels), total)
}

// ---------------------------------------------------------------------------
// Exporters: extra /metrics content beyond the default registry.

// exporters are named callbacks appended to the /metrics output — the
// write-coordinator registers one that re-exposes its shards' latest ack
// samples with shard labels. Keys are caller-chosen and must be unique
// per live session (sessions unregister on close).
var (
	expMu     sync.Mutex
	exporters = map[string]func(io.Writer){}
)

// RegisterExporter installs a /metrics appender under key, replacing any
// previous holder of the key.
func RegisterExporter(key string, fn func(io.Writer)) {
	expMu.Lock()
	defer expMu.Unlock()
	exporters[key] = fn
}

// UnregisterExporter removes a /metrics appender.
func UnregisterExporter(key string) {
	expMu.Lock()
	defer expMu.Unlock()
	delete(exporters, key)
}

// writeExporters appends every registered exporter's output in key order.
func writeExporters(w io.Writer) {
	expMu.Lock()
	keys := make([]string, 0, len(exporters))
	for k := range exporters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fns := make([]func(io.Writer), 0, len(keys))
	for _, k := range keys {
		fns = append(fns, exporters[k])
	}
	expMu.Unlock()
	for _, fn := range fns {
		fn(w)
	}
}
