package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins the bucket mapping: power-of-two boundaries,
// zero in bucket 0, clamping into the last bucket.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {-5, 0},
		{1, 1},         // [1,2)
		{2, 2}, {3, 2}, // [2,4)
		{4, 3}, {7, 3}, // [4,8)
		{1023, 10}, {1024, 11},
		{1 << 41, histBuckets - 1}, // clamped
		{1 << 60, histBuckets - 1}, // clamped
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	for b := 1; b < histBuckets-1; b++ {
		lo, hi := BucketUpper(b-1), BucketUpper(b)
		if bucketOf(lo) != b || bucketOf(hi-1) != b {
			t.Errorf("bucket %d bounds [%d,%d) not honored", b, lo, hi)
		}
	}
}

// TestHistogramQuantile checks derived quantiles against a known
// distribution: the estimate must land within the true value's bucket
// (log-bucket resolution is the contract, not exactness).
func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 90 observations at ~1µs, 9 at ~100µs, 1 at ~10ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)
	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	wantSum := int64(90*1000 + 9*100_000 + 10_000_000)
	if s := h.Sum(); s != wantSum {
		t.Fatalf("sum = %d, want %d", s, wantSum)
	}
	// Log-bucketed quantiles are accurate to within a factor of two of
	// the true value — the resolution contract the bucket layout gives.
	within2x := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		if got < want/2 || got > want*2 {
			t.Errorf("q%.2f = %v, want within 2x of %v", q, got, want)
		}
	}
	within2x(0.50, time.Microsecond)
	within2x(0.90, time.Microsecond)
	within2x(0.95, 100*time.Microsecond)
	within2x(1.00, 10*time.Millisecond)
	// Monotonicity across the quantile range.
	prev := time.Duration(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q%.2f=%v < %v", q, cur, prev)
		}
		prev = cur
	}
}

// TestNilSafety: every handle type no-ops on nil receivers — call sites
// never need to branch.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var j *Journal
	c.Add(5)
	c.Inc()
	g.Set(7)
	g.Add(1)
	g.Max(9)
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	j.Record("x", -1, "")
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read zero")
	}
	if j.Tail(5) != nil || j.Since(0) != nil || j.Seq() != 0 {
		t.Fatal("nil journal must read empty")
	}
}

// TestSetEnabled: the kill switch freezes every instrument.
func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_enabled_total")
	h := r.Histogram("t_enabled_seconds")
	SetEnabled(false)
	c.Inc()
	h.Observe(time.Second)
	SetEnabled(true)
	if c.Load() != 0 || h.Count() != 0 {
		t.Fatal("disabled instruments must not record")
	}
	c.Inc()
	if c.Load() != 1 {
		t.Fatal("re-enabled counter must record")
	}
}

// TestRegistryIdempotent: resolving the same name+labels twice returns
// the same handle; different labels split series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "kind", "a")
	b := r.Counter("x_total", "kind", "a")
	c := r.Counter("x_total", "kind", "b")
	if a != b {
		t.Fatal("same name+labels must share a handle")
	}
	if a == c {
		t.Fatal("distinct labels must not share a handle")
	}
	a.Add(2)
	c.Add(3)
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("want 2 series, got %d", len(snaps))
	}
}

// TestJournalOrdering: sequence numbers strictly increase in append
// order, the ring retains the newest cap entries, and Since windows are
// correct across a wrap.
func TestJournalOrdering(t *testing.T) {
	j := NewJournal(8)
	before := j.Seq()
	for i := 0; i < 20; i++ {
		j.Record("k", i, "")
	}
	tail := j.Tail(0)
	if len(tail) != 8 {
		t.Fatalf("ring should retain 8, got %d", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs after wrap: %d then %d", tail[i-1].Seq, tail[i].Seq)
		}
	}
	if tail[len(tail)-1].Shard != 19 {
		t.Fatalf("newest event lost: shard=%d", tail[len(tail)-1].Shard)
	}
	since := j.Since(before + 15)
	if len(since) != 5 {
		t.Fatalf("Since window wrong: got %d events, want 5", len(since))
	}
	if got := j.Tail(3); len(got) != 3 || got[2].Seq != j.Seq() {
		t.Fatal("Tail(3) must return the 3 newest, newest last")
	}
}

// TestJournalConcurrent: concurrent appends never duplicate or skip
// sequence numbers.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Record("c", -1, "")
			}
		}()
	}
	wg.Wait()
	tail := j.Tail(0)
	if len(tail) != 4000 {
		t.Fatalf("retained %d, want 4000", len(tail))
	}
	seen := map[uint64]bool{}
	for _, e := range tail {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestWritePrometheus checks the text exposition shape: TYPE lines,
// cumulative le buckets in seconds, _sum/_count, label merging.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx_total", "kind", "walker").Add(7)
	r.Gauge("depth").Set(3)
	h := r.Histogram("lat_seconds")
	h.Observe(3 * time.Nanosecond) // bucket 2, le 4ns
	h.Observe(3 * time.Nanosecond)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE tx_total counter",
		`tx_total{kind="walker"} 7`,
		"# TYPE depth gauge",
		"depth 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="4e-09"} 2`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestSampleMergeLabel: coordinator-side re-exposition injects shard
// labels into both bare and labeled series.
func TestSampleMergeLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(4)
	r.Counter("b_total", "kind", "x").Add(5)
	r.Histogram("q_seconds").Observe(time.Millisecond)
	s := r.Sample()
	if len(s.Counters) != 4 { // a, b, q_count, q_sum_ns
		t.Fatalf("sample size %d, want 4", len(s.Counters))
	}
	var buf bytes.Buffer
	WriteSample(&buf, s, "shard", "2")
	out := buf.String()
	for _, want := range []string{
		`a_total{shard="2"} 4`,
		`b_total{kind="x",shard="2"} 5`,
		`q_seconds_count{shard="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sample exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestServeEndpoints boots the HTTP plane on :0 and scrapes all three
// endpoints plus pprof.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	j := NewJournal(16)
	j.Record("boot", -1, "hello")
	RegisterStatus("t_section", func() any { return map[string]int{"x": 1} })
	defer UnregisterStatus("t_section")
	RegisterExporter("t_extra", func(w io.Writer) { fmt.Fprintln(w, "extra_total 9") })
	defer UnregisterExporter("t_extra")
	s, err := Serve("127.0.0.1:0", r, j)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if m := get("/metrics"); !strings.Contains(m, "up_total 1") || !strings.Contains(m, "extra_total 9") {
		t.Errorf("/metrics missing series:\n%s", m)
	}
	if st := get("/statusz"); !strings.Contains(st, "t_section") || !strings.Contains(st, "up_total") {
		t.Errorf("/statusz missing sections:\n%s", st)
	}
	if ev := get("/eventz"); !strings.Contains(ev, `"kind": "boot"`) {
		t.Errorf("/eventz missing event:\n%s", ev)
	}
	if pp := get("/debug/pprof/cmdline"); pp == "" {
		t.Error("pprof cmdline empty")
	}
	// A second bind on the same concrete address must fail synchronously.
	if _, err := Serve(s.Addr(), r, j); err == nil {
		t.Fatal("rebinding a taken address must fail at startup")
	}
}
