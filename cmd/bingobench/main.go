// Command bingobench regenerates the paper's evaluation tables and figures
// on synthetic stand-ins for its datasets (see DESIGN.md for the
// substitution arguments and EXPERIMENTS.md for paper-vs-measured records).
//
// Usage:
//
//	bingobench -exp table3
//	bingobench -exp fig12 -datasets AM,GO -scale 0.005
//	bingobench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/bingo-rw/bingo/internal/bench"
	"github.com/bingo-rw/bingo/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment(s) to run, comma-separated (see -list); 'all' runs everything")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Float64("scale", 0.01, "dataset scale relative to the paper's sizes")
		maxEdges = flag.Int64("max-edges", 2_000_000, "cap on generated edges per dataset")
		batch    = flag.Int("batch", 0, "update batch size (0 = paper's 100K × scale)")
		rounds   = flag.Int("rounds", 10, "update+walk rounds (paper: 10)")
		length   = flag.Int("length", 80, "walk length (paper: 80)")
		walkers  = flag.Int("walkers", 5000, "max walkers per round")
		workers  = flag.Int("workers", 0, "parallel workers (0 = 1)")
		seed     = flag.Uint64("seed", 42, "experiment seed")
		datasets = flag.String("datasets", "", "comma-separated dataset abbrs (default all: AM,GO,CT,LJ,TW)")
		systems  = flag.String("systems", "", "comma-separated systems for table3 (default Bingo,KnightKing,RebuildITS,FlowWalker)")
		apps     = flag.String("apps", "", "comma-separated apps for table3 (default DeepWalk,node2vec,PPR)")
		jsonPath = flag.String("json", "BENCH_concurrent.json", "output path for the concurrent scenario's JSON report ('' disables)")
		transp   = flag.String("transports", "", "comma-separated sharded-scenario transports (default inproc,tcp)")
		cacheM   = flag.String("cache-modes", "", "comma-separated sharded-scenario hub-cache modes (default on,off)")
		kernelM  = flag.String("kernel-modes", "", "comma-separated stepping-kernel modes for the concurrent/sharded scenarios (default sparse,dense,auto)")
		procsF   = flag.String("procs", "", "comma-separated GOMAXPROCS sweep for the kernel dimension (default 1,4)")
		jsonSh   = flag.String("json-sharded", "BENCH_sharded.json", "output path for the sharded scenario's JSON report ('' disables)")
		jsonReb  = flag.String("json-rebalance", "BENCH_rebalance.json", "output path for the rebalance scenario's JSON report ('' disables)")
		jsonBp   = flag.String("json-backpressure", "BENCH_backpressure.json", "output path for the backpressure scenario's JSON report ('' disables)")
		jsonCo   = flag.String("json-corpus", "BENCH_corpus.json", "output path for the corpus scenario's JSON report ('' disables)")
		jsonCs   = flag.String("json-coordscale", "BENCH_coordscale.json", "output path for the coordscale scenario's JSON report ('' disables)")
		verbose  = flag.Bool("v", false, "progress output")
		debugA   = flag.String("debug-addr", "", "expose the observability plane (/metrics, /statusz, /eventz, /debug/pprof) while experiments run")
		pprofA   = flag.String("pprof", "", "alias for -debug-addr (kept for compatibility)")
	)
	flag.Parse()

	if *debugA == "" {
		*debugA = *pprofA
	}
	if *debugA != "" {
		dbg, err := obs.Serve(*debugA, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bingobench: debug-addr:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug: serving /metrics, /statusz, /eventz, /debug/pprof on http://%s/\n", dbg.Addr())
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Println(e)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bingobench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Split(s, ",")
	}
	o := bench.DefaultOptions(os.Stdout)
	o.Scale = *scale
	o.MaxEdges = *maxEdges
	o.BatchSize = *batch
	o.Rounds = *rounds
	o.WalkLength = *length
	o.MaxWalkers = *walkers
	o.Workers = *workers
	o.Seed = *seed
	o.Datasets = split(*datasets)
	o.Systems = split(*systems)
	o.Apps = split(*apps)
	o.JSONPath = *jsonPath
	o.ShardedJSONPath = *jsonSh
	o.RebalanceJSONPath = *jsonReb
	o.BackpressureJSONPath = *jsonBp
	o.CorpusJSONPath = *jsonCo
	o.CoordScaleJSONPath = *jsonCs
	o.Transports = split(*transp)
	o.CacheModes = split(*cacheM)
	o.KernelModes = split(*kernelM)
	for _, p := range split(*procsF) {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bingobench: bad -procs value %q: %v\n", p, err)
			os.Exit(2)
		}
		o.Procs = append(o.Procs, n)
	}
	o.Verbose = *verbose

	if err := bench.Run(*exp, o); err != nil {
		fmt.Fprintln(os.Stderr, "bingobench:", err)
		os.Exit(1)
	}
}
