// Command bingowalk runs a random-walk application over an edge-list file
// (or a generated dataset) with the Bingo engine, optionally applying an
// update stream between walk rounds. It prints timing, throughput, and the
// most-visited vertices.
//
// Usage:
//
//	bingowalk -graph edges.txt -app deepwalk -length 80
//	bingowalk -dataset LJ -scale 0.005 -app ppr -updates 10000
//
// Serving modes form a ladder: -live serves one engine, -live -shards N
// partitions it across N in-process shard engines, and the pair
// -shard-serve / -live -connect crosses the process boundary — each
// shard runs as its own daemon and the coordinator drives them over the
// TCP shard fabric:
//
//	bingowalk -shard-serve -addr 127.0.0.1:7431 -shard 0/2
//	bingowalk -shard-serve -addr 127.0.0.1:7432 -shard 1/2
//	bingowalk -live -connect 127.0.0.1:7431,127.0.0.1:7432 -dataset AM
//
// The top rung scales the query tier itself: while a -live -connect
// write session keeps feeding the daemons, any number of -attach
// processes join the same shard set as read-coordinators and serve
// queries beside it (bounded staleness via the write session's broadcast
// stream):
//
//	bingowalk -attach 127.0.0.1:7431,127.0.0.1:7432 -live-queries 100000
//
// Every mode accepts -debug-addr <addr> (alias: -pprof) to expose the
// observability plane: /metrics (Prometheus text), /statusz (JSON
// snapshot of every service's stats), /eventz (the structured event
// journal), and /debug/pprof (e.g. -debug-addr 127.0.0.1:6060). On a
// coordinator the /metrics page is fleet-wide: every shard daemon's
// tallies ride back on barrier acks and re-export under a shard label.
//
// Any -live rung can additionally serve from a standing walk corpus
// (-corpus): K maintained walks per vertex answer queries as slices
// while the feed dirties and incrementally resamples only the affected
// suffixes (-stats prints the maintenance tallies):
//
//	bingowalk -live -shards 4 -corpus -stats -dataset AM
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bingo-rw/bingo/internal/obs"
	"github.com/bingo-rw/bingo/internal/rebalance"

	bingo "github.com/bingo-rw/bingo"
	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/gen"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file ('src dst [bias]' lines)")
		dataset   = flag.String("dataset", "", "generate a paper dataset instead (AM|GO|CT|LJ|TW)")
		scale     = flag.Float64("scale", 0.01, "dataset scale when -dataset is used")
		app       = flag.String("app", "deepwalk", "application: deepwalk|node2vec|ppr|simple")
		length    = flag.Int("length", 80, "walk length")
		walkersN  = flag.Int("walkers", 0, "number of walkers (0 = one per vertex)")
		updates   = flag.Int("updates", 0, "apply this many mixed updates before walking")
		seed      = flag.Uint64("seed", 1, "seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = 1)")
		top       = flag.Int("top", 10, "print the top-N visited vertices")
		live      = flag.Bool("live", false, "serve walk queries concurrently with a streaming update feed")
		liveQ     = flag.Int("live-queries", 10000, "walk queries to issue in -live mode")
		liveUps   = flag.Int("live-updates", 100000, "updates streamed during serving in -live mode")
		liveBatch = flag.Int("live-batch", 256, "feed batch size in -live mode")
		shards    = flag.Int("shards", 1, "partition -live serving across N shard engines (walker-transfer topology)")
		connect   = flag.String("connect", "", "comma-separated shard-daemon addresses: -live drives them over the TCP fabric instead of in-process shards")
		shardSrv  = flag.Bool("shard-serve", false, "host one shard daemon: listen on -addr and serve coordinator sessions (see -sessions)")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address for -shard-serve")
		shardSpec = flag.String("shard", "0/1", "this daemon's position K/N for -shard-serve")
		sessions  = flag.Int("sessions", 0, "coordinator sessions a -shard-serve daemon serves before exiting (0 = loop forever)")
		cacheOff  = flag.Bool("hub-cache-off", false, "disable the hub-vertex view caches in the serving modes")
		hubDeg    = flag.Int("hub-degree", 0, "hub-cache admission degree threshold (0 = default)")
		reb       = flag.Bool("rebalance", false, "enable the heat-aware shard rebalancer in the sharded serving modes")
		rebEvery  = flag.Duration("rebalance-interval", 0, "rebalancer heat-check period (0 = default 500ms)")
		rebImbal  = flag.Float64("rebalance-imbalance", 0, "rebalancer trigger: hottest shard's step share over this multiple of 1/shards (0 = default 1.3)")
		rebMoves  = flag.Int("rebalance-max-moves", 0, "block migrations per heat check (0 = default 4)")
		replicas  = flag.Int("replicas", 1, "block ownership replication factor in the sharded serving modes (R consecutive shards hold each block; survives shard deaths by replica promotion; mutually exclusive with -rebalance)")
		creditWin = flag.Int("credit-window", 0, "per-shard ingest credit window: max routed-but-unapplied update events before Feed blocks (0 = default 16384, negative disables)")
		kernelF   = flag.String("kernel", "auto", "stepping-kernel mode in the serving modes: sparse|dense|auto")
		corpusF   = flag.Bool("corpus", false, "serve -live queries from a standing walk corpus with incremental suffix resampling")
		corpusK   = flag.Int("corpus-walks", 0, "standing walks maintained per vertex in -corpus mode (0 = default 2)")
		corpusSB  = flag.Int("corpus-stale", 0, "staleness bound in -corpus mode: max feed events a corpus answer may trail by before falling back to a fresh walk (0 = default 4096, negative disables the fallback)")
		statsF    = flag.Bool("stats", false, "periodically print a serving summary from the metrics registry; in -corpus mode also print maintenance tallies at the end")
		attach    = flag.String("attach", "", "comma-separated shard-daemon addresses: join a running serving session as a read-coordinator (requires a live -connect write session)")
		debugAddr = flag.String("debug-addr", "", "expose the observability plane (/metrics, /statusz, /eventz, /debug/pprof) on this address (all modes)")
		pprofAddr = flag.String("pprof", "", "alias for -debug-addr (kept for compatibility)")
	)
	flag.Parse()

	if *debugAddr == "" {
		*debugAddr = *pprofAddr
	}
	if *debugAddr != "" {
		// Synchronous bind: a taken port or a bad address fails the run at
		// startup instead of vanishing into a background goroutine's stderr.
		dbg, err := obs.Serve(*debugAddr, nil, nil)
		if err != nil {
			fail(fmt.Errorf("debug-addr: %w", err))
		}
		defer dbg.Close()
		fmt.Printf("debug: serving /metrics, /statusz, /eventz, /debug/pprof on http://%s/\n", dbg.Addr())
	}

	kernel, err := walk.ParseKernelMode(*kernelF)
	if err != nil {
		fail(err)
	}

	hubCache := bingo.HubCacheOptions{Off: *cacheOff, MinDegree: *hubDeg}
	rebOpts := rebalance.Options{On: *reb, Interval: *rebEvery, Imbalance: *rebImbal, MaxMovesPerCycle: *rebMoves}
	if *shardSrv {
		if err := runShardServe(*addr, *shardSpec, *workers, *sessions); err != nil {
			fail(err)
		}
		return
	}
	if *attach != "" {
		if err := runAttach(*attach, *seed, *length, *liveQ, *workers, hubCache); err != nil {
			fail(err)
		}
		return
	}
	if *corpusF && !*live {
		fail(fmt.Errorf("-corpus is a -live serving mode (add -live)"))
	}
	if *live {
		co := corpusOpts{on: *corpusF, walks: *corpusK, stale: *corpusSB, stats: *statsF}
		if err := runLive(*graphPath, *dataset, *scale, *seed, *length, *liveUps, *liveQ, *liveBatch, *workers, *shards, *connect, *replicas, *creditWin, kernel, hubCache, rebOpts, co); err != nil {
			fail(err)
		}
		return
	}

	g, err := loadGraph(*graphPath, *dataset, *scale, *seed)
	if err != nil {
		fail(err)
	}
	st := g.ComputeStats()
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree)

	cfg := core.DefaultConfig()
	if *workers > 0 {
		cfg.Workers = *workers
	}
	t0 := time.Now()
	var eng *core.Sampler
	if *updates > 0 {
		w, err := gen.BuildWorkload(g, gen.UpdMixed, *updates, 1, *seed)
		if err != nil {
			fail(err)
		}
		eng, err = core.NewFromCSR(w.Initial, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("build: %v\n", time.Since(t0).Round(time.Millisecond))
		t1 := time.Now()
		if _, err := eng.ApplyBatch(w.Updates); err != nil {
			fail(err)
		}
		d := time.Since(t1)
		fmt.Printf("updates: %d in %v (%.0f updates/s)\n",
			len(w.Updates), d.Round(time.Millisecond), float64(len(w.Updates))/d.Seconds())
	} else {
		eng, err = core.NewFromCSR(g, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("build: %v\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("engine memory: %.2f MB\n", float64(eng.Footprint())/1e6)

	apps := map[string]walk.App{
		"deepwalk": walk.AppDeepWalk, "node2vec": walk.AppNode2Vec,
		"ppr": walk.AppPPR, "simple": walk.AppSimple,
	}
	a, ok := apps[*app]
	if !ok {
		fail(fmt.Errorf("unknown app %q", *app))
	}
	wcfg := walk.Config{Length: *length, Seed: *seed, Workers: *workers, CountVisits: true}
	if *walkersN > 0 {
		starts := make([]graph.VertexID, *walkersN)
		for i := range starts {
			starts[i] = graph.VertexID(i % eng.NumVertices())
		}
		wcfg.Starts = starts
	}
	t2 := time.Now()
	res := walk.Run(a, eng, wcfg)
	d := time.Since(t2)
	fmt.Printf("%s: %d walkers, %d steps in %v (%.0f steps/s)\n",
		*app, res.Walkers, res.Steps, d.Round(time.Millisecond), float64(res.Steps)/d.Seconds())

	type vc struct {
		v graph.VertexID
		c int64
	}
	var counts []vc
	for v, c := range res.Visits {
		if c > 0 {
			counts = append(counts, vc{graph.VertexID(v), c})
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].c > counts[j].c })
	if len(counts) > *top {
		counts = counts[:*top]
	}
	fmt.Printf("top %d visited:\n", len(counts))
	for _, e := range counts {
		fmt.Printf("  vertex %-10d %d visits\n", e.v, e.c)
	}
}

func loadGraph(path, dataset string, scale float64, seed uint64) (*graph.CSR, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	case dataset != "":
		d, err := gen.DatasetByAbbr(dataset)
		if err != nil {
			return nil, err
		}
		return d.Generate(scale, seed)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bingowalk:", err)
	os.Exit(1)
}

// runShardServe is the -shard-serve mode: host one shard of a
// multi-process serving topology. Each coordinator session (a
// `bingowalk -live -connect …` elsewhere) gets a fresh engine; after its
// teardown the daemon loops back to accepting the next coordinator
// Hello, for -sessions sessions (0 = forever). The listen address is
// printed first so drivers can scrape it when -addr ends in ":0".
func runShardServe(addr, spec string, workers, sessions int) error {
	var k, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &k, &n); err != nil || n < 1 || k < 0 || k >= n {
		return fmt.Errorf("-shard %q: want K/N with 0 <= K < N", spec)
	}
	if sessions <= 0 {
		sessions = -1 // serve until killed
	}
	var lastMu sync.Mutex
	last := map[string]any{"shard": k, "of": n, "sessions_served": 0}
	obs.RegisterStatus("shard_daemon", func() any {
		lastMu.Lock()
		defer lastMu.Unlock()
		out := make(map[string]any, len(last))
		for key, v := range last {
			out[key] = v
		}
		return out
	})
	_, err := bingo.ServeShard(addr, k, n, bingo.ShardServeOptions{
		Walkers:  workers,
		Sessions: sessions,
		OnListen: func(a string) {
			fmt.Printf("shard-serve: shard %d/%d listening on %s\n", k, n, a)
		},
		OnSession: func(i int, st bingo.ShardServeStats, err error) {
			lastMu.Lock()
			last["sessions_served"] = i + 1
			if err != nil {
				last["last_error"] = err.Error()
			} else {
				last["last_session"] = st
			}
			lastMu.Unlock()
			if err != nil {
				fmt.Printf("shard-serve: session %d failed: %v\n", i, err)
				return
			}
			fmt.Printf("shard-serve: session %d over: %d steps (%d transfers out, %d hub-cache hits, %d remote-view hops), %d updates applied (%d dropped), %d edges across %d vertices\n",
				i, st.Steps, st.Transfers, st.Cache.LocalHits, st.Cache.RemoteHits, st.Updates, st.Dropped, st.Edges, st.Vertices)
		},
	})
	return err
}

// printRebalance reports the rebalancer's session activity (silent when
// it never ran).
func printRebalance(ls walk.ShardedLiveStats) {
	if ls.Rebalance.PlanEpoch == 0 && ls.Rebalance.Migrations == 0 {
		return
	}
	shares := make([]string, len(ls.ShardSteps))
	for i, s := range ls.ShardSteps {
		share := 0.0
		if ls.Steps > 0 {
			share = float64(s) / float64(ls.Steps)
		}
		shares[i] = fmt.Sprintf("%.2f", share)
	}
	fmt.Printf("rebalance: %d block migrations (%d edges shipped, plan epoch %d), per-shard step share [%s]\n",
		ls.Rebalance.Migrations, ls.Rebalance.MovedEdges, ls.Rebalance.PlanEpoch, strings.Join(shares, " "))
}

// printFabricHealth reports failover activity and ingest-credit pressure
// when either had anything to say.
func printFabricHealth(ls walk.ShardedLiveStats) {
	if f := ls.Failover; f.Deaths > 0 || f.Rejoins > 0 {
		fmt.Printf("failover: %d shard deaths, %d walkers re-routed, %d relaunched, %d rejoins (%d snapshot blocks copied)\n",
			f.Deaths, f.Reroutes, f.Relaunches, f.Rejoins, f.CopiedBlocks)
	}
	if b := ls.Backpressure; b.Window > 0 {
		fmt.Printf("backpressure: credit window %d, max outstanding %d, feed stalled %v\n",
			b.Window, b.MaxOutstanding, b.Stalled.Round(time.Millisecond))
	}
}

// printServing is the single end-of-run formatting path for the sharded
// serving runtimes (in-process and remote report the same
// walk.ShardedLiveStats shape).
func printServing(ls walk.ShardedLiveStats, d time.Duration) {
	fmt.Printf("served %d queries (%d steps) and ingested %d updates in %v\n", ls.Queries, ls.Steps, ls.Updates, d.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f queries/s, %.0f steps/s, %.0f updates/s\n",
		float64(ls.Queries)/d.Seconds(), float64(ls.Steps)/d.Seconds(), float64(ls.Updates)/d.Seconds())
	fmt.Printf("walker transfer: %d cross-shard hand-offs, %d local steps (ratio %.3f)\n",
		ls.Transfers, ls.Local, ls.TransferRatio())
	fmt.Printf("hub cache: %d lock-free hops (%d stale), %d hand-offs absorbed by remote views (%d view requests)\n",
		ls.Cache.LocalHits, ls.Cache.LocalStale, ls.Cache.RemoteHits, ls.Cache.ViewRequests)
	printRebalance(ls)
	printFabricHealth(ls)
}

// statsLine renders the registry's headline counters as one line — the
// -stats periodic printer reads the same snapshot /metrics and /statusz
// expose, so the console view can never drift from the scrape view.
func statsLine() string {
	var b strings.Builder
	b.WriteString("stats:")
	var steps, queries, updates, refreshes int64
	var qp99 time.Duration
	for _, m := range obs.Default.Snapshot() {
		switch m.Name {
		case "bingo_kernel_steps_total":
			steps += m.Value
		case "bingo_query_seconds":
			queries += m.Count
			if d := time.Duration(m.P99Ns); d > qp99 {
				qp99 = d
			}
		case "bingo_ingest_updates_total":
			updates += m.Value
		case "bingo_corpus_refreshes_total":
			refreshes += m.Value
		}
	}
	fmt.Fprintf(&b, " queries=%d steps=%d updates=%d", queries, steps, updates)
	if qp99 > 0 {
		fmt.Fprintf(&b, " query-p99=%v", qp99.Round(10*time.Microsecond))
	}
	if refreshes > 0 {
		fmt.Fprintf(&b, " corpus-refreshes=%d", refreshes)
	}
	return b.String()
}

// statsLoop prints statsLine every interval until stop closes.
func statsLoop(interval time.Duration, stop <-chan struct{}, done *sync.WaitGroup) {
	defer done.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			fmt.Println(statsLine())
		}
	}
}

// liveServer abstracts the serving runtimes the -live mode can drive:
// the single-engine LiveService, the sharded walker-transfer service,
// the remote multi-process coordinator, and the standing walk corpus
// wrapping any of them.
type liveServer interface {
	Query(start graph.VertexID, length int) ([]graph.VertexID, error)
	Feed(ups []graph.Update) error
	Close() error
}

// corpusOpts carry the -corpus flag family into runLive.
type corpusOpts struct {
	on    bool
	walks int
	stale int
	stats bool
}

// printCorpus reports the corpus serving split and, with -stats, the
// maintenance tallies through the ShardedLiveStats ack path (satellite
// view: the same numbers any fabric observer of the service sees).
func printCorpus(c *walk.CorpusService, d time.Duration, withStats bool) {
	cs := c.Stats()
	fmt.Printf("corpus: %d standing walks served %d queries in %v (%.0f queries/s): %d corpus slices (%d stale within bound), %d fresh fallbacks\n",
		cs.Walks, cs.Queries, d.Round(time.Millisecond), float64(cs.Queries)/d.Seconds(),
		cs.CorpusServed, cs.StaleServed, cs.Fallbacks)
	if !withStats {
		return
	}
	ct := c.ShardedStats().Corpus
	fmt.Printf("corpus maintenance: %d refreshes, %d suffix resamples: %d resampled steps vs %d full-walk-equivalent steps (amplification %.3f), max refresh lag %d ms\n",
		cs.Refreshes, ct.Resamples, ct.ResampledSteps, ct.FullWalkSteps, cs.Amplification(), ct.RefreshLagMs)
	fmt.Printf("corpus watermarks: %d events fed, corpus at %d, backend applied stamp %d\n",
		cs.FedEvents, cs.CorpusWatermark, cs.AppliedStamp)
}

// runLive is the -live mode: a walker pool serves queries while a feeder
// streams update batches into the same engine — the walk-while-ingest
// serving scenario (see DESIGN.md, "Concurrency model"). With -shards N>1
// the graph is 1-D partitioned across N engines and walks cross shard
// boundaries by walker transfer (supplement §9.1); with -connect the
// shards are separate daemon processes behind the TCP fabric.
func runLive(graphPath, dataset string, scale float64, seed uint64, length, updates, queries, batchSize, workers, shards int, connect string, replicas, creditWin int, kernel walk.KernelMode, hubCache bingo.HubCacheOptions, rebOpts rebalance.Options, co corpusOpts) error {
	g, err := loadGraph(graphPath, dataset, scale, seed)
	if err != nil {
		return err
	}
	if updates <= 0 {
		updates = 1
	}
	w, err := gen.BuildWorkload(g, gen.UpdMixed, updates, 1, seed)
	if err != nil {
		return err
	}
	// Report the snapshot the engine actually starts from: BuildWorkload
	// withholds the tape's deletable edges from the initial graph.
	st := w.Initial.ComputeStats()
	fmt.Printf("graph: %d vertices, %d initial edges, avg degree %.1f (+%d updates to stream)\n",
		st.Vertices, st.Edges, st.AvgDegree, len(w.Updates))
	if workers <= 0 {
		workers = 1 // the -workers contract: 0 = 1
	}

	cacheSpec := fabric.CacheSpec{Off: hubCache.Off, MinDegree: hubCache.MinDegree}
	ccfg := walk.CorpusConfig{
		WalksPerVertex: co.walks,
		WalkLength:     length,
		Seed:           seed,
		StalenessBound: int64(co.stale),
		CreditWindow:   creditWin,
		Cache:          cacheSpec,
		Kernel:         kernel,
	}
	var svc liveServer
	var single *concurrent.Engine
	var sharded *walk.ShardedLiveService
	var remote *walk.RemoteService
	var corpus *walk.CorpusService
	var shardEngines []*concurrent.Engine
	if connect != "" {
		addrs := strings.Split(connect, ",")
		plan := walk.NewShardPlan(w.Initial.NumVertices(), len(addrs))
		if replicas > 1 {
			plan.Replicas = replicas
		}
		port, err := tcpgob.DialWith(addrs, fabric.Hello{
			RangeSize:   plan.RangeSize,
			NumVertices: w.Initial.NumVertices(),
			Cache:       cacheSpec,
			Replicas:    plan.Replicas,
			Kernel:      kernel.String(),
		}, tcpgob.DialConfig{Resilient: plan.Replicas > 1})
		if err != nil {
			return err
		}
		remote, err = walk.NewRemoteService(port, plan, w.Initial.NumVertices(), walk.ShardedLiveConfig{
			WalkLength: length, Seed: seed, Rebalance: rebOpts,
			CreditWindow: creditWin,
		})
		if err != nil {
			return err
		}
		if err := remote.Bootstrap(w.Initial); err != nil {
			return fmt.Errorf("bootstrap: %w", err)
		}
		svc = remote
		if co.on {
			if corpus, err = walk.NewShardedCorpusService(remote, w.Initial.NumVertices(), ccfg); err != nil {
				return err
			}
			svc = corpus
		}
		fmt.Printf("live: %d shard daemons over the TCP fabric (range size %d), feeding %d updates in batches of %d\n",
			plan.Shards, plan.RangeSize, len(w.Updates), batchSize)
	} else if shards > 1 {
		plan := walk.NewShardPlan(w.Initial.NumVertices(), shards)
		if replicas > 1 {
			plan.Replicas = replicas
		}
		engines, err := walk.BootstrapShards(w.Initial, plan, func() (walk.LiveEngine, error) {
			s, err := core.New(w.Initial.NumVertices(), core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return concurrent.Wrap(s, concurrent.Config{}), nil
		})
		if err != nil {
			return err
		}
		shardEngines = make([]*concurrent.Engine, plan.Shards)
		for i, e := range engines {
			shardEngines[i] = e.(*concurrent.Engine)
		}
		sharded, err = walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
			WalkersPerShard: workers, WalkLength: length, Seed: seed, Cache: cacheSpec,
			Rebalance: rebOpts, CreditWindow: creditWin, Kernel: kernel,
		})
		if err != nil {
			return err
		}
		svc = sharded
		if co.on {
			if corpus, err = walk.NewShardedCorpusService(sharded, w.Initial.NumVertices(), ccfg); err != nil {
				return err
			}
			svc = corpus
		}
		fmt.Printf("live: %d shards × %d crew walkers (range size %d), feeding %d updates in batches of %d\n",
			plan.Shards, workers, plan.RangeSize, len(w.Updates), batchSize)
	} else {
		eng, err := core.NewFromCSR(w.Initial, core.DefaultConfig())
		if err != nil {
			return err
		}
		single = concurrent.Wrap(eng, concurrent.Config{})
		if co.on {
			if corpus, err = walk.NewCorpusService(single, ccfg); err != nil {
				return err
			}
			svc = corpus
		} else {
			svc = walk.NewLiveService(single, walk.LiveConfig{Walkers: workers, WalkLength: length, Seed: seed, Cache: cacheSpec, Kernel: kernel})
		}
		fmt.Printf("live: %d pool walkers, %d lock stripes, feeding %d updates in batches of %d\n",
			workers, single.Stripes(), len(w.Updates), batchSize)
	}
	if corpus != nil {
		fmt.Printf("corpus: %d standing walks grown (length %d), refresh loop running\n",
			corpus.Stats().Walks, length)
	}

	// /statusz sections: each runtime in play exposes its structured
	// stats snapshot beside the registry.
	switch {
	case remote != nil:
		obs.RegisterStatus("remote", func() any { return remote.Stats() })
	case sharded != nil:
		obs.RegisterStatus("sharded", func() any { return sharded.Stats() })
	default:
		if lsvc, ok := svc.(*walk.LiveService); ok {
			obs.RegisterStatus("live", func() any { return lsvc.Stats() })
		}
	}
	if corpus != nil {
		obs.RegisterStatus("corpus", func() any { return corpus.Stats() })
	}

	var statsDone sync.WaitGroup
	statsStop := make(chan struct{})
	if co.stats {
		statsDone.Add(1)
		go statsLoop(2*time.Second, statsStop, &statsDone)
	}

	t0 := time.Now()
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		for lo := 0; lo < len(w.Updates); lo += batchSize {
			hi := lo + batchSize
			if hi > len(w.Updates) {
				hi = len(w.Updates)
			}
			if err := svc.Feed(w.Updates[lo:hi]); err != nil {
				fmt.Fprintln(os.Stderr, "bingowalk: feed:", err)
				return
			}
		}
	}()

	var clients sync.WaitGroup
	clientN := workers * max(1, shards)
	perClient := (queries + clientN - 1) / clientN
	for c := 0; c < clientN; c++ {
		clients.Add(1)
		go func(c int) {
			defer clients.Done()
			r := xrand.New(seed + uint64(c) + 1)
			for q := 0; q < perClient; q++ {
				if _, err := svc.Query(graph.VertexID(r.Intn(g.NumVertices())), length); err != nil {
					fmt.Fprintln(os.Stderr, "bingowalk: query:", err)
					return
				}
			}
		}(c)
	}
	clients.Wait()
	feeder.Wait()
	if remote != nil {
		// Final barrier so the session's ingest tallies are exact before
		// the stats snapshot.
		if err := remote.Sync(); err != nil {
			return err
		}
	}
	if err := svc.Close(); err != nil {
		return err
	}
	d := time.Since(t0)
	close(statsStop)
	statsDone.Wait()
	if co.stats {
		fmt.Println(statsLine())
	}

	if corpus != nil {
		printCorpus(corpus, d, co.stats)
	}
	if remote != nil {
		printServing(remote.Stats(), d)
		fmt.Printf("final graph: %d vertices across %d shard daemons\n", remote.NumVertices(), remote.Shards())
		return nil
	}
	if sharded != nil {
		printServing(sharded.Stats(), d)
		var edges, mem int64
		for _, e := range shardEngines {
			edges += e.NumEdges()
			mem += e.Footprint()
		}
		fmt.Printf("final graph: %d edges across %d shards, engine memory %.2f MB\n",
			edges, len(shardEngines), float64(mem)/1e6)
		return nil
	}
	if corpus != nil {
		fmt.Printf("final graph: %d edges, engine memory %.2f MB\n", single.NumEdges(), float64(single.Footprint())/1e6)
		return nil
	}
	ls := svc.(*walk.LiveService).Stats()
	fmt.Printf("served %d queries (%d steps) and ingested %d updates in %v\n", ls.Queries, ls.Steps, ls.Updates, d.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f queries/s, %.0f steps/s, %.0f updates/s\n",
		float64(ls.Queries)/d.Seconds(), float64(ls.Steps)/d.Seconds(), float64(ls.Updates)/d.Seconds())
	fmt.Printf("hub cache: %d lock-free hops, %d stale views refreshed\n", ls.CacheHits, ls.CacheStale)
	fmt.Printf("final graph: %d edges, engine memory %.2f MB\n", single.NumEdges(), float64(single.Footprint())/1e6)
	return nil
}

// runAttach is the -attach mode: join a running multi-process serving
// session as a read-coordinator. The shard daemons must already be
// driven by a write session (`bingowalk -live -connect …` elsewhere);
// this process learns the plan, epoch, and watermarks from that
// session's broadcast stream and serves queries beside it without ever
// touching the ingest path.
func runAttach(addrs string, seed uint64, length, queries, workers int, hubCache bingo.HubCacheOptions) error {
	list := strings.Split(addrs, ",")
	rd, err := bingo.AttachReader(list, bingo.ReaderOptions{
		WalkLength: length,
		Seed:       seed,
		HubCache:   hubCache,
	})
	if err != nil {
		return err
	}
	defer rd.Close()
	obs.RegisterStatus("reader", func() any { return rd.Stats() })
	verts := rd.NumVertices()
	fmt.Printf("attach: read-coordinator joined %d shard daemons (plan epoch %d, %d vertices, applied stamp %d)\n",
		len(list), rd.Stats().PlanEpoch, verts, rd.AppliedStamp())

	if workers <= 0 {
		workers = 1
	}
	perClient := (queries + workers - 1) / workers
	var served atomic.Int64
	t0 := time.Now()
	var clients sync.WaitGroup
	for c := 0; c < workers; c++ {
		clients.Add(1)
		go func(c int) {
			defer clients.Done()
			r := xrand.New(seed + uint64(c) + 1)
			for q := 0; q < perClient; q++ {
				if _, err := rd.Query(graph.VertexID(r.Intn(verts)), length); err != nil {
					fmt.Fprintln(os.Stderr, "bingowalk: attach query:", err)
					return
				}
				served.Add(1)
			}
		}(c)
	}
	clients.Wait()
	d := time.Since(t0)

	st := rd.Stats()
	fmt.Printf("served %d queries (%d steps) in %v (%.0f queries/s, %.0f steps/s)\n",
		st.Queries, st.Steps, d.Round(time.Millisecond),
		float64(served.Load())/d.Seconds(), float64(st.Steps)/d.Seconds())
	fmt.Printf("reader cache: %d hub-view hops served locally (%d cached views, %d view requests), %d walker launches (%d shard hand-offs)\n",
		st.LocalHits, st.CachedViews, st.ViewRequests, st.Launches, st.Transfers)
	fmt.Printf("broadcast: plan epoch %d (%d flips seen), applied stamp %d\n",
		st.PlanEpoch, st.PlanFlips, st.Applied)
	return nil
}
