// Package bingo is a random-walk engine for dynamically changing graphs,
// reproducing "Bingo: Radix-based Bias Factorization for Random Walk on
// Dynamic Graphs" (EuroSys 2025).
//
// Bingo samples a biased neighbor in O(1) and ingests edge insertions and
// deletions in O(K) — K being the bit width of the largest bias — by
// decomposing each edge bias into power-of-two sub-biases, grouping them by
// bit position, and sampling hierarchically: an alias table across groups,
// then uniform sampling within the chosen group. An adaptive group
// representation (dense / one-element / sparse / regular) keeps the memory
// overhead practical, and a batched-update path ingests large update
// batches with vertex-level parallelism and a single rebuild per vertex.
//
// # Quick start
//
//	eng, err := bingo.FromEdges([]bingo.Edge{
//		{Src: 0, Dst: 1, Weight: 5},
//		{Src: 0, Dst: 2, Weight: 3},
//	})
//	if err != nil { ... }
//	r := bingo.NewRand(42)
//	next, ok := eng.Sample(0, r)         // biased O(1) sample
//	err = eng.Insert(1, 2, 7)            // O(K) streaming update
//	res := eng.DeepWalk(bingo.WalkOptions{Length: 80})
//
// See the examples directory for runnable scenarios and DESIGN.md for the
// system inventory and the paper-experiment index.
package bingo

import (
	"bufio"
	"fmt"
	"io"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/walk"
	"github.com/bingo-rw/bingo/internal/xrand"
)

// VertexID identifies a vertex (up to 2^32-1 vertices).
type VertexID = uint32

// Rand is the deterministic random number generator used by sampling and
// walks. Create one per goroutine with NewRand; generators are not safe for
// concurrent use, but any number may be used concurrently with each other
// and with Sample.
type Rand = xrand.RNG

// NewRand returns a deterministic generator seeded with seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// Edge is a weighted directed edge. Weight must be positive; in the default
// integer-bias mode it is truncated to an integer (and must be >= 1), while
// in float mode (WithFloatWeights) the fractional part participates via the
// paper's λ-scaled decimal group.
type Edge struct {
	Src, Dst VertexID
	Weight   float64
}

// Op enumerates update kinds.
type Op uint8

const (
	// OpInsert adds an edge.
	OpInsert Op = iota
	// OpDelete removes one live instance of an edge.
	OpDelete
)

// Update is one dynamic-graph event for ApplyBatch / ApplyStream.
type Update struct {
	Op       Op
	Src, Dst VertexID
	// Weight is the inserted edge's weight (ignored for OpDelete).
	Weight float64
}

// Insert returns an insertion event.
func Insert(src, dst VertexID, weight float64) Update {
	return Update{Op: OpInsert, Src: src, Dst: dst, Weight: weight}
}

// Delete returns a deletion event.
func Delete(src, dst VertexID) Update {
	return Update{Op: OpDelete, Src: src, Dst: dst}
}

// BatchResult reports what a batch application did.
type BatchResult struct {
	Inserted, Deleted, NotFound int
}

// Options configure an Engine.
type options struct {
	cfg core.Config
}

// Option customizes engine construction.
type Option func(*options) error

// WithFloatWeights enables floating-point edge weights (paper §4.3).
// lambda is the amortization factor; 0 selects automatic calibration.
func WithFloatWeights(lambda float64) Option {
	return func(o *options) error {
		if lambda < 0 {
			return fmt.Errorf("bingo: negative lambda %v", lambda)
		}
		o.cfg.FloatBias = true
		o.cfg.Lambda = lambda
		return nil
	}
}

// WithRadixBits sets the radix base to 2^bits (supplement §9.2). The
// default is 1 (binary factorization).
func WithRadixBits(bits int) Option {
	return func(o *options) error {
		o.cfg.RadixBits = bits
		return nil
	}
}

// WithAdaptiveGroups toggles the §5.1 adaptive group representation
// (enabled by default; disabling reproduces the paper's "BS" baseline).
func WithAdaptiveGroups(enabled bool) Option {
	return func(o *options) error {
		o.cfg.Adaptive = enabled
		return nil
	}
}

// WithThresholds overrides the Equation 9 dense/sparse thresholds
// (percentages; paper defaults 40 and 10).
func WithThresholds(alphaPct, betaPct float64) Option {
	return func(o *options) error {
		o.cfg.AlphaPct = alphaPct
		o.cfg.BetaPct = betaPct
		return nil
	}
}

// WithWorkers bounds batched-update parallelism (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(o *options) error {
		o.cfg.Workers = n
		return nil
	}
}

// Engine is a Bingo sampler over a dynamic graph. Concurrent Sample calls
// are safe; updates must not run concurrently with sampling or each other.
type Engine struct {
	s *core.Sampler
}

func buildOptions(opts []Option) (core.Config, error) {
	o := options{cfg: core.DefaultConfig()}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return core.Config{}, err
		}
	}
	return o.cfg, nil
}

// New creates an empty engine with the given vertex-ID space. The space
// grows automatically when updates reference larger IDs.
func New(numVertices int, opts ...Option) (*Engine, error) {
	cfg, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	s, err := core.New(numVertices, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{s: s}, nil
}

// FromEdges creates an engine initialized with the given edges. The vertex
// space is sized to the largest referenced ID.
func FromEdges(edges []Edge, opts ...Option) (*Engine, error) {
	cfg, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	maxID := VertexID(0)
	for _, e := range edges {
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	ge := make([]graph.Edge, len(edges))
	for i, e := range edges {
		if e.Weight <= 0 {
			return nil, fmt.Errorf("bingo: edge (%d,%d) weight %v must be positive", e.Src, e.Dst, e.Weight)
		}
		ib := uint64(e.Weight)
		ge[i] = graph.Edge{Src: e.Src, Dst: e.Dst, Bias: ib, FBias: e.Weight - float64(ib)}
		if !cfg.FloatBias {
			if ib == 0 {
				return nil, fmt.Errorf("bingo: edge (%d,%d) weight %v truncates to zero in integer mode (use WithFloatWeights)", e.Src, e.Dst, e.Weight)
			}
			ge[i].FBias = 0
		}
	}
	g, err := graph.FromEdges(int(maxID)+1, ge)
	if err != nil {
		return nil, err
	}
	s, err := core.NewFromCSR(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{s: s}, nil
}

// FromEdgeList creates an engine from "src dst [weight]" text (weights
// default to 1; '#'/'%' lines are comments).
func FromEdgeList(r io.Reader, opts ...Option) (*Engine, error) {
	cfg, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	s, err := core.NewFromCSR(g, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{s: s}, nil
}

// NumVertices returns the vertex-ID space size.
func (e *Engine) NumVertices() int { return e.s.NumVertices() }

// NumEdges returns the live edge count.
func (e *Engine) NumEdges() int64 { return e.s.NumEdges() }

// Degree returns u's out-degree.
func (e *Engine) Degree(u VertexID) int { return e.s.Degree(u) }

// HasEdge reports whether at least one edge u→dst is live.
func (e *Engine) HasEdge(u, dst VertexID) bool { return e.s.HasEdge(u, dst) }

// Memory returns the engine's total memory footprint in bytes (adjacency,
// group structures, inverted indices, alias tables).
func (e *Engine) Memory() int64 { return e.s.Footprint() }

// Stats is an observability snapshot of the engine's internal structures.
type Stats struct {
	Vertices int
	Edges    int64
	Memory   int64
	// Groups counts radix groups by representation: dense, one-element,
	// sparse, regular (paper §5.1's adaptive categories).
	DenseGroups, OneElementGroups, SparseGroups, RegularGroups int64
	// Lambda is the float-bias amortization factor (0 in integer mode).
	Lambda float64
}

// Stats collects the observability snapshot (O(V + groups)).
func (e *Engine) Stats() Stats {
	gs := e.s.CollectGroupStats()
	lambda := 0.0
	if e.s.Config().FloatBias {
		lambda = e.s.Lambda()
	}
	return Stats{
		Vertices:         e.NumVertices(),
		Edges:            e.NumEdges(),
		Memory:           e.Memory(),
		DenseGroups:      gs.Groups[core.KindDense],
		OneElementGroups: gs.Groups[core.KindOne],
		SparseGroups:     gs.Groups[core.KindSparse],
		RegularGroups:    gs.Groups[core.KindRegular],
		Lambda:           lambda,
	}
}

// Sample draws a neighbor of u with probability weight/Σweights in O(1).
// ok is false when u has no sampleable out-edge. Safe for concurrent use
// with other Sample calls (each goroutine needs its own Rand).
func (e *Engine) Sample(u VertexID, r *Rand) (v VertexID, ok bool) {
	return e.s.Sample(u, r)
}

// Insert adds edge u→dst with the given weight (streaming path, O(K)).
func (e *Engine) Insert(u, dst VertexID, weight float64) error {
	return e.insert(u, dst, weight)
}

func (e *Engine) insert(u, dst VertexID, weight float64) error {
	if e.s.Config().FloatBias {
		return e.s.InsertFloat(u, dst, weight)
	}
	ib, err := intWeight(weight)
	if err != nil {
		return err
	}
	return e.s.Insert(u, dst, ib)
}

// maxIntWeight bounds integer-mode weights: beyond 2^62 the float→uint64
// conversion result is implementation-specific per the Go spec, and two
// such biases could overflow a vertex's uint64 total mass.
const maxIntWeight = float64(1 << 62)

// intWeight validates and truncates an integer-mode weight; shared by the
// sequential and concurrent public entry points so their rules cannot
// diverge.
func intWeight(weight float64) (uint64, error) {
	// Rejects NaN (self-inequality), ≤0, Inf/out-of-range, and values that
	// truncate to zero.
	if weight != weight || weight <= 0 || weight >= maxIntWeight || uint64(weight) == 0 {
		return 0, fmt.Errorf("bingo: weight %v invalid in integer mode", weight)
	}
	return uint64(weight), nil
}

// Delete removes one live instance of edge u→dst (streaming path, O(K)).
func (e *Engine) Delete(u, dst VertexID) error { return e.s.Delete(u, dst) }

// UpdateWeight rewrites the weight of one live instance of edge u→dst in
// O(K), touching only the radix groups on which old and new weight differ
// (paper §4.2's bias-update operation).
func (e *Engine) UpdateWeight(u, dst VertexID, weight float64) error {
	if e.s.Config().FloatBias {
		return e.s.UpdateBiasFloat(u, dst, weight)
	}
	ib, err := intWeight(weight)
	if err != nil {
		return err
	}
	return e.s.UpdateBias(u, dst, ib)
}

// DeleteVertex removes every out-edge of u (O(degree)). In-edges pointing
// at u are not removed — the engine keeps no reverse adjacency; delete
// them explicitly or use DeleteVertexEverywhere for a full O(V+E) sweep.
func (e *Engine) DeleteVertex(u VertexID) error { return e.s.DeleteVertex(u) }

// DeleteVertexEverywhere removes u's out-edges and scans all vertices for
// in-edges to u, removing those too (O(V+E); administrative use).
func (e *Engine) DeleteVertexEverywhere(u VertexID) error {
	return e.s.DeleteVertexEverywhere(u)
}

// toInternal converts a public update to the internal representation.
func (e *Engine) toInternal(ups []Update) ([]graph.Update, error) {
	return toInternalUpdates(e.s.Config().FloatBias, ups)
}

func toInternalUpdates(floatMode bool, ups []Update) ([]graph.Update, error) {
	out := make([]graph.Update, len(ups))
	for i, up := range ups {
		g := graph.Update{Src: up.Src, Dst: up.Dst}
		switch up.Op {
		case OpInsert:
			g.Op = graph.OpInsert
			if up.Weight <= 0 {
				return nil, fmt.Errorf("bingo: update %d: weight %v must be positive", i, up.Weight)
			}
			g.Bias = uint64(up.Weight)
			if floatMode {
				g.FBias = up.Weight - float64(g.Bias)
			} else if g.Bias == 0 {
				return nil, fmt.Errorf("bingo: update %d: weight %v truncates to zero in integer mode", i, up.Weight)
			}
		case OpDelete:
			g.Op = graph.OpDelete
		default:
			return nil, fmt.Errorf("bingo: update %d: unknown op %d", i, up.Op)
		}
		out[i] = g
	}
	return out, nil
}

// ApplyBatch ingests updates through the high-throughput batched path
// (paper §5.2): per-vertex reordering, parallel workers, 2-phase
// delete-and-swap, one rebuild per touched vertex. Deletions of edges that
// are not live are counted in BatchResult.NotFound and skipped.
func (e *Engine) ApplyBatch(ups []Update) (BatchResult, error) {
	internal, err := e.toInternal(ups)
	if err != nil {
		return BatchResult{}, err
	}
	res, err := e.s.ApplyBatch(internal)
	return BatchResult{Inserted: res.Inserted, Deleted: res.Deleted, NotFound: res.NotFound}, err
}

// ApplyStream ingests updates one at a time through the low-latency
// streaming path. Deletions of missing edges are skipped.
func (e *Engine) ApplyStream(ups []Update) error {
	internal, err := e.toInternal(ups)
	if err != nil {
		return err
	}
	return e.s.ApplyUpdatesStreaming(internal)
}

// WalkOptions configure a random-walk run.
type WalkOptions struct {
	// Length is the walk length (default 80, the paper's setting).
	Length int
	// Starts are the start vertices; nil starts one walker per vertex.
	Starts []VertexID
	// Workers bounds walker parallelism (default 1).
	Workers int
	// Seed makes the run reproducible.
	Seed uint64
	// TermProb is PPR's per-step termination probability (default 1/80).
	TermProb float64
	// P, Q are node2vec's hyper-parameters (defaults 0.5 and 2, as in
	// the paper's evaluation).
	P, Q float64
	// CountVisits enables per-vertex visit counting.
	CountVisits bool
}

// WalkResult summarizes a walk run.
type WalkResult struct {
	// Walkers is the number of walks performed.
	Walkers int
	// Steps is the total number of sampling steps.
	Steps int64
	// Visits[v] counts arrivals at v (nil unless CountVisits).
	Visits []int64
}

func (o WalkOptions) internal() walk.Config {
	return walk.Config{
		Length: o.Length, Starts: o.Starts, Workers: o.Workers,
		Seed: o.Seed, TermProb: o.TermProb, P: o.P, Q: o.Q,
		CountVisits: o.CountVisits,
	}
}

func fromWalk(r walk.Result) WalkResult {
	return WalkResult{Walkers: r.Walkers, Steps: r.Steps, Visits: r.Visits}
}

// DeepWalk runs biased DeepWalk: fixed-length first-order walks.
func (e *Engine) DeepWalk(o WalkOptions) WalkResult {
	return fromWalk(walk.DeepWalk(e.s, o.internal()))
}

// Node2Vec runs second-order node2vec walks (Equation 1's p/q biases via
// KnightKing-style rejection).
func (e *Engine) Node2Vec(o WalkOptions) WalkResult {
	return fromWalk(walk.Node2Vec(e.s, o.internal()))
}

// PPR runs personalized-PageRank walks with geometric termination.
func (e *Engine) PPR(o WalkOptions) WalkResult {
	return fromWalk(walk.PPR(e.s, o.internal()))
}

// SimpleSampling runs the independent one-hop sampling kernel.
func (e *Engine) SimpleSampling(o WalkOptions) WalkResult {
	return fromWalk(walk.SimpleSampling(e.s, o.internal()))
}

// MetaPath runs metapath-guided second-order walks: labels assigns each
// vertex a type, and walkers follow the cyclic type pattern (e.g.
// author→paper→venue→paper), sampling each transition from the biased
// distribution restricted to the required type via rejection.
func (e *Engine) MetaPath(labels func(VertexID) uint8, pattern []uint8, o WalkOptions) WalkResult {
	return fromWalk(walk.MetaPath(e.s, labels, pattern, o.internal()))
}

// WriteDeepWalkCorpus runs DeepWalk and writes one walk per line (space
// separated vertex IDs) — the sentence corpus SkipGram-style embedding
// trainers consume.
func (e *Engine) WriteDeepWalkCorpus(o WalkOptions, w io.Writer) (WalkResult, error) {
	bw := bufio.NewWriter(w)
	var writeErr error
	res := walk.DeepWalkPaths(e.s, o.internal(), func(path []graph.VertexID) {
		if writeErr != nil {
			return
		}
		for i, v := range path {
			if i > 0 {
				if _, err := bw.WriteString(" "); err != nil {
					writeErr = err
					return
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", v); err != nil {
				writeErr = err
				return
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			writeErr = err
		}
	})
	if writeErr != nil {
		return fromWalk(res), writeErr
	}
	return fromWalk(res), bw.Flush()
}

// WriteSnapshot writes the engine's current graph as "src dst weight"
// lines — one discrete snapshot of the paper's dynamic-graph model
// (Definition 2.1). The output round-trips through FromEdgeList.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	return e.s.Snapshot().WriteEdgeList(w)
}

// CheckInvariants verifies internal structural invariants; it is intended
// for tests and debugging (O(V + E·K)).
func (e *Engine) CheckInvariants() error { return e.s.CheckInvariants() }
