// Observability smoke: real `bingowalk -shard-serve` daemon processes
// (each serving its own -debug-addr plane), an in-process ServeRemote
// write session, one feed-and-query pass — then scrape /metrics,
// /statusz, and /eventz and assert the metric families the fleet
// contract promises, including the shard-labeled node tallies that ride
// barrier acks back to the coordinator. This is the body of
// `make obs-smoke`.
package bingo

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/obs"
)

// spawnShardDaemonObs is spawnShardDaemon with the observability plane
// on: it scrapes both the announced debug address and the fabric listen
// address from the daemon's stdout.
func spawnShardDaemonObs(t *testing.T, bin string, shard, shards int) (addr, debugAddr string, wait func()) {
	t.Helper()
	cmd := exec.Command(bin,
		"-shard-serve", "-addr", "127.0.0.1:0",
		"-shard", fmt.Sprintf("%d/%d", shard, shards),
		"-sessions", "1",
		"-workers", "2",
		"-debug-addr", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting shard daemon %d: %v", shard, err)
	}
	killed := false
	t.Cleanup(func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for addr == "" || debugAddr == "" {
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		if i := strings.Index(line, "on http://"); i >= 0 && strings.HasPrefix(line, "debug:") {
			debugAddr = strings.TrimSuffix(strings.TrimSpace(line[i+len("on http://"):]), "/")
		}
		if i := strings.LastIndex(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
		}
	}
	if addr == "" || debugAddr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("shard daemon %d never announced its addresses (fabric %q, debug %q)", shard, addr, debugAddr)
	}
	go io.Copy(io.Discard, stdout)
	wait = func() {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			killed = true
			if err != nil {
				t.Errorf("shard daemon %d exited with error: %v", shard, err)
			}
		case <-time.After(30 * time.Second):
			t.Errorf("shard daemon %d did not exit after session close", shard)
			cmd.Process.Kill()
			<-done
			killed = true
		}
	}
	return addr, debugAddr, wait
}

// scrape GETs one debug endpoint and returns the body.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s%s: %v", addr, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s%s: status %d", addr, path, resp.StatusCode)
	}
	return string(body)
}

func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard-daemon processes")
	}
	const (
		shards  = 2
		ringN   = 200
		vertMax = 400
		tapeLen = 1500
	)
	bin := buildDaemonBinary(t)
	addrs := make([]string, shards)
	debugs := make([]string, shards)
	waits := make([]func(), shards)
	for i := 0; i < shards; i++ {
		addrs[i], debugs[i], waits[i] = spawnShardDaemonObs(t, bin, i, shards)
	}

	// The coordinator process serves its own debug plane, like a
	// `-live -connect` run with -debug-addr would.
	srv, err := obs.Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("obs.Serve: %v", err)
	}
	defer srv.Close()

	ring := make([]Edge, ringN)
	for i := range ring {
		ring[i] = Edge{Src: VertexID(i), Dst: VertexID((i + 1) % ringN), Weight: 1}
	}
	eng, err := FromEdges(ring)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := eng.ServeRemote(addrs, RemoteOptions{WalkLength: 12, Seed: 0x0B5})
	if err != nil {
		t.Fatalf("ServeRemote: %v", err)
	}

	tape := buildDistTape(tapeLen, vertMax, 0x0B5D)
	for lo := 0; lo < len(tape); lo += 64 {
		hi := lo + 64
		if hi > len(tape) {
			hi = len(tape)
		}
		if err := rw.Feed(tape[lo:hi]); err != nil {
			t.Fatalf("Feed: %v", err)
		}
	}
	for q := 0; q < 64; q++ {
		if _, err := rw.Query(VertexID(q%vertMax), 12); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	// The Sync barrier is what carries each shard's obs sample back on
	// its ack, making the next coordinator scrape fleet-wide.
	if err := rw.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// Coordinator /metrics: local families plus every shard's tallies
	// re-exposed under a shard label.
	coord := scrape(t, srv.Addr(), "/metrics")
	for _, want := range []string{
		`bingo_query_seconds_count{svc="coord"}`,
		`bingo_ingest_updates_total{svc="coord"}`,
		`bingo_fabric_frames_total{fabric="tcp",dir="tx",kind="updates"}`,
		`bingo_node_steps_total{shard="0"}`,
		`bingo_node_steps_total{shard="1"}`,
		`bingo_node_updates_total{shard="0"}`,
	} {
		if !strings.Contains(coord, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}
	statusz := scrape(t, srv.Addr(), "/statusz")
	for _, want := range []string{`"metrics"`, `"status"`, `bingo_query_seconds`} {
		if !strings.Contains(statusz, want) {
			t.Errorf("coordinator /statusz missing %q", want)
		}
	}
	scrape(t, srv.Addr(), "/eventz") // must serve valid JSON with status 200

	// Daemon planes: each daemon's own process registry must show the
	// stepping and fabric work it did.
	for i, d := range debugs {
		dm := scrape(t, d, "/metrics")
		for _, want := range []string{
			"bingo_kernel_steps_total",
			`bingo_fabric_frames_total{fabric="tcp",dir="rx",kind="updates"}`,
		} {
			if !strings.Contains(dm, want) {
				t.Errorf("daemon %d /metrics missing %q", i, want)
			}
		}
		ds := scrape(t, d, "/statusz")
		if !strings.Contains(ds, "shard_daemon") {
			t.Errorf("daemon %d /statusz missing shard_daemon section", i)
		}
		scrape(t, d, "/eventz")
	}

	if err := rw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, wait := range waits {
		wait()
	}
}
