// The multi-process acceptance harness: the loopback differential test
// runs ≥2 shard daemons as *separate processes* (real `bingowalk
// -shard-serve` binaries over the TCP fabric), drives a growth-inducing
// feed and cross-shard queries through Engine.ServeRemote, and then
// requires the distributed state to match a sequential replay
// edge-for-edge plus a ≥1e5-draw chi-square over the served sampling
// distribution. It is the process-boundary extension of
// internal/walk/sharded_differential_test.go, and the body of
// `make distserve-smoke`.
//
// This file is an internal test (package bingo) so it can read the
// daemons' edge multisets back through the fabric's dump barrier
// (RemoteWalker's unexported service) without widening the public API.
package bingo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	dsRingN   = 400  // initial ring the engine snapshot bootstraps
	dsVertMax = 800  // tape references IDs up to here (growth-inducing)
	dsTapeLen = 6000 // update events streamed during serving
	dsWriters = 4
	dsShards  = 2
	dsSamples = 120000 // ≥ 1e5 chi-square draws through ServeRemote
)

// buildDaemonBinary compiles cmd/bingowalk once into a temp dir.
func buildDaemonBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bingowalk")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/bingowalk")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building bingowalk: %v\n%s", err, out)
	}
	return bin
}

// spawnShardDaemon starts one `bingowalk -shard-serve` process on a
// kernel-assigned port and scrapes the announced listen address. The
// returned wait function blocks for (and asserts) a clean exit.
func spawnShardDaemon(t *testing.T, bin string, shard, shards int) (string, func()) {
	t.Helper()
	// -sessions 1: the daemon default is to serve coordinator sessions
	// indefinitely; the harness asserts a clean exit after this one.
	cmd := exec.Command(bin,
		"-shard-serve", "-addr", "127.0.0.1:0",
		"-shard", fmt.Sprintf("%d/%d", shard, shards),
		"-sessions", "1",
		"-workers", "2")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting shard daemon %d: %v", shard, err)
	}
	killed := false
	t.Cleanup(func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.LastIndex(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("shard daemon %d never announced a listen address", shard)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	wait := func() {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			killed = true
			if err != nil {
				t.Errorf("shard daemon %d exited with error: %v", shard, err)
			}
		case <-time.After(30 * time.Second):
			t.Errorf("shard daemon %d did not exit after session close", shard)
			cmd.Process.Kill()
			<-done
			killed = true
		}
	}
	return addr, wait
}

// buildDistTape generates a growth-inducing public update tape over
// [0, numVertices) in which every (src,dst) pair has at most one live
// instance at any point (deletions are unambiguous, so any valid replay
// agrees edge-for-edge), plus a sprinkle of not-found deletions for the
// tolerant path. Integer weights keep the public→internal conversion
// exact.
func buildDistTape(n, numVertices int, seed uint64) []Update {
	r := xrand.New(seed)
	type pair struct{ src, dst VertexID }
	live := make([]pair, 0, n)
	liveAt := make(map[pair]int, n)
	tape := make([]Update, 0, n)
	for len(tape) < n {
		roll := r.Float64()
		switch {
		case roll < 0.25 && len(live) > 8:
			i := r.Intn(len(live))
			p := live[i]
			last := len(live) - 1
			live[i] = live[last]
			liveAt[live[i]] = i
			live = live[:last]
			delete(liveAt, p)
			tape = append(tape, Delete(p.src, p.dst))
		case roll < 0.30:
			p := pair{VertexID(r.Intn(numVertices)), VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			tape = append(tape, Delete(p.src, p.dst))
		default:
			p := pair{VertexID(r.Intn(numVertices)), VertexID(r.Intn(numVertices))}
			if _, ok := liveAt[p]; ok {
				continue
			}
			liveAt[p] = len(live)
			live = append(live, p)
			tape = append(tape, Insert(p.src, p.dst, float64(1+r.Intn(1000))))
		}
	}
	return tape
}

type dsEdge struct {
	src, dst graph.VertexID
	bias     uint64
}

func dsFlatten(out []dsEdge, g *graph.CSR) []dsEdge {
	for u := 0; u < g.NumVertices(); u++ {
		vid := graph.VertexID(u)
		dsts := g.Neighbors(vid)
		biases := g.Biases(vid)
		for i := range dsts {
			out = append(out, dsEdge{src: vid, dst: dsts[i], bias: biases[i]})
		}
	}
	return out
}

func dsSort(es []dsEdge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.bias < b.bias
	})
}

func TestDistServeLoopbackDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard-daemon processes and draws 120k samples over TCP")
	}
	bin := buildDaemonBinary(t)
	addrs := make([]string, dsShards)
	waits := make([]func(), dsShards)
	for i := 0; i < dsShards; i++ {
		addrs[i], waits[i] = spawnShardDaemon(t, bin, i, dsShards)
	}

	// The coordinator's engine: a directed ring over the initial space.
	ring := make([]Edge, dsRingN)
	for i := range ring {
		ring[i] = Edge{Src: VertexID(i), Dst: VertexID((i + 1) % dsRingN), Weight: 1}
	}
	eng, err := FromEdges(ring)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := eng.ServeRemote(addrs, RemoteOptions{WalkLength: 16, Seed: 0xD157})
	if err != nil {
		t.Fatalf("ServeRemote: %v", err)
	}

	// Stream the growth tape through dsWriters writers, partitioned by
	// source (each source's events stay with one writer, in tape order —
	// the contract the differential-equivalence argument needs), while
	// query walkers cross shard and process boundaries.
	tape := buildDistTape(dsTapeLen, dsVertMax, 0xD15D)
	parts := make([][]Update, dsWriters)
	for _, up := range tape {
		w := int(up.Src) % dsWriters
		parts[w] = append(parts[w], up)
	}
	var writers sync.WaitGroup
	for w := 0; w < dsWriters; w++ {
		writers.Add(1)
		go func(part []Update) {
			defer writers.Done()
			const chunk = 64
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := rw.Feed(part[lo:hi]); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
		}(parts[w])
	}
	done := make(chan struct{})
	var walkers sync.WaitGroup
	for q := 0; q < 4; q++ {
		walkers.Add(1)
		go func(seed uint64) {
			defer walkers.Done()
			r := xrand.New(seed)
			for n := 0; ; n++ {
				if n >= 32 {
					select {
					case <-done:
						return
					default:
					}
				}
				start := VertexID(r.Intn(dsVertMax))
				path, err := rw.Query(start, 16)
				if err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("path %v does not begin at %d", path, start)
					return
				}
			}
		}(0xFACE + uint64(q))
	}
	writers.Wait()
	close(done)
	walkers.Wait()
	if err := rw.Sync(); err != nil {
		t.Fatalf("Sync after feed: %v", err)
	}
	st := rw.Stats()
	t.Logf("replayed %d updates under %d writers across %d daemon processes (%d queries, %d transfers, ratio %.3f)",
		st.Updates, dsWriters, dsShards, st.Queries, st.Transfers, st.TransferRatio())
	// Bootstrap ships the ring as snapshot (Boot) batches, which are
	// excluded from the update tally — Updates counts the tape alone.
	if want := int64(dsTapeLen); st.Updates != want || st.Dropped != 0 {
		t.Fatalf("ingest stats %+v, want %d updates (tape only; bootstrap is snapshot traffic), 0 dropped", st, want)
	}
	if st.Transfers == 0 {
		t.Fatal("no cross-process walker transfers — the partition topology was not exercised")
	}
	if rw.NumVertices() <= dsRingN {
		t.Fatal("no daemon grew beyond the initial space — tape not growth-inducing")
	}

	// Sequential ground truth: ring + tape, one goroutine, streaming
	// path, over a space pre-sized to the tape's maximum.
	seqUps := make([]Update, 0, dsRingN+dsTapeLen)
	for _, e := range ring {
		seqUps = append(seqUps, Insert(e.Src, e.Dst, e.Weight))
	}
	seqUps = append(seqUps, tape...)
	internal, err := toInternalUpdates(false, seqUps)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.New(dsVertMax, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ApplyUpdatesStreaming(internal); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}

	// Chi-square the served sampling distribution against the replay's
	// exact probabilities on the highest-degree vertices. Every draw is a
	// full ServeRemote round trip: Query(u, 1) routes to the owner
	// daemon, samples one hop, and retires back over TCP.
	type cand struct {
		u graph.VertexID
		d int
	}
	var cands []cand
	for u := 0; u < dsVertMax; u++ {
		if d := seq.Degree(graph.VertexID(u)); d >= 4 {
			cands = append(cands, cand{graph.VertexID(u), d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
	if len(cands) > 8 {
		cands = cands[:8]
	}
	if len(cands) == 0 {
		t.Fatal("no test vertices with degree ≥ 4 — tape generator broken")
	}
	perVertex := dsSamples / len(cands)
	for _, c := range cands {
		slotProbs := seq.VertexProbabilities(c.u)
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range slotProbs {
			probByDst[seq.Neighbor(c.u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		var obsMu sync.Mutex
		var drawers sync.WaitGroup
		const par = 16
		for g := 0; g < par; g++ {
			n := perVertex / par
			if g < perVertex%par {
				n++
			}
			drawers.Add(1)
			go func(n int) {
				defer drawers.Done()
				local := make([]int64, len(dsts))
				for i := 0; i < n; i++ {
					path, err := rw.Query(c.u, 1)
					if err != nil {
						t.Errorf("vertex %d: Query: %v", c.u, err)
						return
					}
					if len(path) != 2 {
						t.Errorf("vertex %d: degree %d but draw returned path %v", c.u, c.d, path)
						return
					}
					slot, ok := index[path[1]]
					if !ok {
						t.Errorf("vertex %d: sampled %d, not a live neighbor", c.u, path[1])
						return
					}
					local[slot]++
				}
				obsMu.Lock()
				for i, v := range local {
					observed[i] += v
				}
				obsMu.Unlock()
			}(n)
		}
		drawers.Wait()
		if t.Failed() {
			t.FailNow()
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("vertex %d: chi-square: %v", c.u, err)
		}
		if p < 1e-4 {
			t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — served distribution diverges from sequential replay",
				c.u, c.d, stat, p)
		}
	}

	// Edge-for-edge: the union of the daemons' live edge multisets (read
	// back through the fabric's dump barrier) vs the sequential replay.
	shardEdges, err := rw.svc.DumpEdges()
	if err != nil {
		t.Fatalf("DumpEdges: %v", err)
	}
	var got []dsEdge
	for _, es := range shardEdges {
		for _, e := range es {
			got = append(got, dsEdge{src: e.Src, dst: e.Dst, bias: e.Bias})
		}
	}
	want := dsFlatten(nil, seq.Snapshot())
	dsSort(got)
	dsSort(want)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	if err := rw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, wait := range waits {
		wait()
	}
}
