// The real-process query-tier scale-out smoke: shard daemons run as
// separate `bingowalk -shard-serve` processes, one write session owns
// ingest through Engine.ServeRemote, and two bingo.AttachReader
// read-coordinators join the same daemons over their own TCP sessions.
// The readers serve queries while the write session streams a growth
// tape; afterwards bounded staleness must hold through each reader
// (WaitApplied past the writer's post-Sync stamp), a chi-square drawn
// through the readers must match the sequential replay's exact
// probabilities, and the daemons' edge multisets must equal the replay
// edge-for-edge. This is the process-boundary extension of
// internal/walk/multicoord_differential_test.go and the second half of
// `make coord-smoke` (which runs it under -race — hence the modest draw
// count; the full 120k-draw differential lives in the internal test).
//
// Package bingo (internal test) for the same reason as distserve_test.go:
// the edge dump and the writer's applied stamp are read through the
// unexported services without widening the public API.
package bingo

import (
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/graph"
	"github.com/bingo-rw/bingo/internal/stats"
	"github.com/bingo-rw/bingo/internal/xrand"
)

const (
	csRingN   = 400
	csVertMax = 800
	csTapeLen = 4000
	csWriters = 4
	csShards  = 2
	csReaders = 2
	csSamples = 24000 // drawn through the readers; sized for the -race run
)

func TestCoordScaleRealProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns shard-daemon processes and attaches read-coordinators over TCP")
	}
	bin := buildDaemonBinary(t)
	addrs := make([]string, csShards)
	waits := make([]func(), csShards)
	for i := 0; i < csShards; i++ {
		addrs[i], waits[i] = spawnShardDaemon(t, bin, i, csShards)
	}

	ring := make([]Edge, csRingN)
	for i := range ring {
		ring[i] = Edge{Src: VertexID(i), Dst: VertexID((i + 1) % csRingN), Weight: 1}
	}
	eng, err := FromEdges(ring)
	if err != nil {
		t.Fatal(err)
	}
	// The write session must be live before any reader can attach — a
	// reader joins the *active* serving session, it cannot create one.
	rw, err := eng.ServeRemote(addrs, RemoteOptions{WalkLength: 16, Seed: 0xC05D})
	if err != nil {
		t.Fatalf("ServeRemote: %v", err)
	}
	readers := make([]*ReaderWalker, csReaders)
	for i := range readers {
		rd, err := AttachReader(addrs, ReaderOptions{WalkLength: 16, Seed: 0xC0 + uint64(i)})
		if err != nil {
			t.Fatalf("AttachReader %d: %v", i, err)
		}
		readers[i] = rd
	}
	if got := readers[0].NumVertices(); got < csRingN {
		t.Fatalf("reader bootstrapped with %d vertices, want ≥ %d", got, csRingN)
	}

	// Writers stream the growth tape through the write session while
	// every reader serves its own query storm over its own TCP session.
	tape := buildDistTape(csTapeLen, csVertMax, 0xC15D)
	parts := make([][]Update, csWriters)
	for _, up := range tape {
		w := int(up.Src) % csWriters
		parts[w] = append(parts[w], up)
	}
	var writers sync.WaitGroup
	for w := 0; w < csWriters; w++ {
		writers.Add(1)
		go func(part []Update) {
			defer writers.Done()
			const chunk = 64
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := rw.Feed(part[lo:hi]); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
		}(parts[w])
	}
	done := make(chan struct{})
	var storms sync.WaitGroup
	for ri, rd := range readers {
		storms.Add(1)
		go func(ri int, rd *ReaderWalker) {
			defer storms.Done()
			r := xrand.New(0xFACE + uint64(ri))
			for n := 0; ; n++ {
				if n >= 32 {
					select {
					case <-done:
						return
					default:
					}
				}
				start := VertexID(r.Intn(csVertMax))
				path, err := rd.Query(start, 16)
				if err != nil {
					t.Errorf("reader %d: Query: %v", ri, err)
					return
				}
				if len(path) == 0 || path[0] != start {
					t.Errorf("reader %d: path %v does not begin at %d", ri, path, start)
					return
				}
			}
		}(ri, rd)
	}
	writers.Wait()
	close(done)
	storms.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := rw.Sync(); err != nil {
		t.Fatalf("Sync after feed: %v", err)
	}

	// Bounded staleness through real processes: the writer's post-Sync
	// stamp covers the whole tape; each reader's broadcast stream must
	// deliver it, after which the reader serves nothing older.
	stamp := rw.svc.AppliedStamp()
	if stamp < int64(csTapeLen) {
		t.Fatalf("write session applied stamp %d after syncing a %d-update tape", stamp, csTapeLen)
	}
	for ri, rd := range readers {
		waitDone := make(chan error, 1)
		go func() { waitDone <- rd.WaitApplied(stamp) }()
		select {
		case err := <-waitDone:
			if err != nil {
				t.Fatalf("reader %d: WaitApplied(%d): %v", ri, stamp, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("reader %d: WaitApplied(%d) stuck; stats %+v", ri, stamp, rd.Stats())
		}
		rst := rd.Stats()
		if rst.Applied < stamp {
			t.Fatalf("reader %d: applied %d < write stamp %d", ri, rst.Applied, stamp)
		}
		if rst.Queries == 0 {
			t.Fatalf("reader %d served nothing during the tape: %+v", ri, rst)
		}
	}
	st := rw.Stats()
	t.Logf("replayed %d updates with %d attached readers across %d daemon processes; reader stats %+v / %+v",
		st.Updates, csReaders, csShards, readers[0].Stats(), readers[1].Stats())
	if st.Updates != int64(csTapeLen) || st.Dropped != 0 {
		t.Fatalf("ingest stats %+v, want %d updates, 0 dropped", st, csTapeLen)
	}

	// Sequential ground truth, then chi-square the distribution served
	// through the readers (round-robin) on the highest-degree vertices.
	seqUps := make([]Update, 0, csRingN+csTapeLen)
	for _, e := range ring {
		seqUps = append(seqUps, Insert(e.Src, e.Dst, e.Weight))
	}
	seqUps = append(seqUps, tape...)
	internal, err := toInternalUpdates(false, seqUps)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.New(csVertMax, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ApplyUpdatesStreaming(internal); err != nil {
		t.Fatalf("sequential replay: %v", err)
	}
	type cand struct {
		u graph.VertexID
		d int
	}
	var cands []cand
	for u := 0; u < csVertMax; u++ {
		if d := seq.Degree(graph.VertexID(u)); d >= 4 {
			cands = append(cands, cand{graph.VertexID(u), d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d > cands[j].d })
	if len(cands) > 4 {
		cands = cands[:4]
	}
	if len(cands) == 0 {
		t.Fatal("no test vertices with degree ≥ 4 — tape generator broken")
	}
	perVertex := csSamples / len(cands)
	for _, c := range cands {
		slotProbs := seq.VertexProbabilities(c.u)
		probByDst := map[graph.VertexID]float64{}
		for slot, p := range slotProbs {
			probByDst[seq.Neighbor(c.u, slot)] += p
		}
		dsts := make([]graph.VertexID, 0, len(probByDst))
		for d := range probByDst {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		probs := make([]float64, len(dsts))
		index := make(map[graph.VertexID]int, len(dsts))
		for i, d := range dsts {
			probs[i] = probByDst[d]
			index[d] = i
		}
		observed := make([]int64, len(dsts))
		var obsMu sync.Mutex
		var drawers sync.WaitGroup
		const par = 8
		for g := 0; g < par; g++ {
			n := perVertex / par
			if g < perVertex%par {
				n++
			}
			drawers.Add(1)
			go func(g, n int) {
				defer drawers.Done()
				rd := readers[g%csReaders]
				local := make([]int64, len(dsts))
				for i := 0; i < n; i++ {
					path, err := rd.Query(c.u, 1)
					if err != nil {
						t.Errorf("vertex %d: reader Query: %v", c.u, err)
						return
					}
					if len(path) != 2 {
						t.Errorf("vertex %d: degree %d but draw returned path %v", c.u, c.d, path)
						return
					}
					slot, ok := index[path[1]]
					if !ok {
						t.Errorf("vertex %d: sampled %d, not a live neighbor", c.u, path[1])
						return
					}
					local[slot]++
				}
				obsMu.Lock()
				for i, v := range local {
					observed[i] += v
				}
				obsMu.Unlock()
			}(g, n)
		}
		drawers.Wait()
		if t.Failed() {
			t.FailNow()
		}
		stat, p, err := stats.ChiSquareGOF(observed, probs, 5)
		if err != nil {
			t.Fatalf("vertex %d: chi-square: %v", c.u, err)
		}
		if p < 1e-4 {
			t.Errorf("vertex %d (degree %d): chi-square stat %.2f p=%.2e — reader-served distribution diverges from sequential replay",
				c.u, c.d, stat, p)
		}
	}

	// Edge-for-edge through the fabric's dump barrier, then orderly
	// teardown: readers detach first (their Close must not disturb the
	// write session), the write session last, daemons exit clean.
	shardEdges, err := rw.svc.DumpEdges()
	if err != nil {
		t.Fatalf("DumpEdges: %v", err)
	}
	var got []dsEdge
	for _, es := range shardEdges {
		for _, e := range es {
			got = append(got, dsEdge{src: e.Src, dst: e.Dst, bias: e.Bias})
		}
	}
	want := dsFlatten(nil, seq.Snapshot())
	dsSort(got)
	dsSort(want)
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge multiset diverges at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	for ri, rd := range readers {
		if err := rd.Close(); err != nil {
			t.Fatalf("reader %d Close: %v", ri, err)
		}
		if _, err := rw.Query(VertexID(ri), 8); err != nil {
			t.Fatalf("write session Query after reader %d detached: %v", ri, err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, wait := range waits {
		wait()
	}
}
