package bingo

// This file is the public face of the walk-while-ingest subsystem
// (internal/concurrent + walk.LiveService): Engine.Concurrent() upgrades an
// engine to full concurrency, and ConcurrentEngine.Serve() turns it into a
// query/feed service. See DESIGN.md ("Concurrency model") for the stripe and
// epoch protocol and its guarantees.

import (
	"fmt"
	"runtime"
	"time"

	"github.com/bingo-rw/bingo/internal/concurrent"
	"github.com/bingo-rw/bingo/internal/core"
	"github.com/bingo-rw/bingo/internal/fabric"
	"github.com/bingo-rw/bingo/internal/fabric/tcpgob"
	"github.com/bingo-rw/bingo/internal/rebalance"
	"github.com/bingo-rw/bingo/internal/walk"
)

// ConcurrentConfig tunes the concurrency wrapper. The zero value selects
// all defaults.
type ConcurrentConfig struct {
	// Stripes is the lock-stripe count (rounded up to a power of two;
	// default GOMAXPROCS×8). More stripes mean less writer/walker
	// contention at a few cache lines each.
	Stripes int
	// MaxStepRetries bounds epoch-validation re-draws per walk step
	// (default 4).
	MaxStepRetries int
	// Workers bounds ApplyBatch fan-out (default: the engine's worker
	// setting).
	Workers int
}

// ConcurrentEngine is a fully concurrent Bingo engine: any number of
// goroutines may sample, walk, insert, delete, and batch-apply updates
// simultaneously. Sampling stays O(1) and updates O(K); operations on
// vertices in distinct lock stripes do not contend.
type ConcurrentEngine struct {
	ce        *concurrent.Engine
	floatMode bool
}

// Concurrent upgrades the engine for concurrent walk-while-ingest use. The
// returned wrapper takes ownership of the underlying engine: after this
// call the original Engine must no longer be used directly.
func (e *Engine) Concurrent() *ConcurrentEngine {
	return e.ConcurrentWith(ConcurrentConfig{})
}

// ConcurrentWith is Concurrent with explicit tuning.
func (e *Engine) ConcurrentWith(cfg ConcurrentConfig) *ConcurrentEngine {
	ce := concurrent.Wrap(e.s, concurrent.Config{
		Stripes:        cfg.Stripes,
		MaxStepRetries: cfg.MaxStepRetries,
		Workers:        cfg.Workers,
	})
	return &ConcurrentEngine{ce: ce, floatMode: e.s.Config().FloatBias}
}

// NumVertices returns the vertex-ID space size.
func (c *ConcurrentEngine) NumVertices() int { return c.ce.NumVertices() }

// NumEdges returns the live edge count.
func (c *ConcurrentEngine) NumEdges() int64 { return c.ce.NumEdges() }

// Degree returns u's out-degree.
func (c *ConcurrentEngine) Degree(u VertexID) int { return c.ce.Degree(u) }

// HasEdge reports whether at least one edge u→dst is live.
func (c *ConcurrentEngine) HasEdge(u, dst VertexID) bool { return c.ce.HasEdge(u, dst) }

// Memory returns the engine's memory footprint in bytes (quiesces briefly).
func (c *ConcurrentEngine) Memory() int64 { return c.ce.Footprint() }

// Sample draws a neighbor of u with probability weight/Σweights. Safe for
// arbitrary concurrent use; each goroutine needs its own Rand.
func (c *ConcurrentEngine) Sample(u VertexID, r *Rand) (VertexID, bool) {
	return c.ce.Sample(u, r)
}

// SampleSeq draws up to len(dst) independent samples of u's neighbors under
// one lock acquisition, all against the same graph version. It returns the
// number drawn.
func (c *ConcurrentEngine) SampleSeq(u VertexID, dst []VertexID, r *Rand) int {
	return c.ce.SampleSeq(u, dst, r)
}

// Walk performs a first-order walk of up to length steps from start and
// returns the visited path (start included). Each step is drawn with the
// epoch validate-and-retry protocol, so hops reflect stable graph versions
// even while updates interleave.
func (c *ConcurrentEngine) Walk(start VertexID, length int, r *Rand) []VertexID {
	path, _ := c.ce.WalkFrom(start, length, r, nil)
	return path
}

// Insert adds edge u→dst with the given weight (streaming path, O(K)).
func (c *ConcurrentEngine) Insert(u, dst VertexID, weight float64) error {
	if c.floatMode {
		return c.ce.InsertFloat(u, dst, weight)
	}
	ib, err := intWeight(weight)
	if err != nil {
		return err
	}
	return c.ce.Insert(u, dst, ib)
}

// Delete removes one live instance of edge u→dst (streaming path, O(K)).
func (c *ConcurrentEngine) Delete(u, dst VertexID) error { return c.ce.Delete(u, dst) }

// UpdateWeight rewrites the weight of one live instance of edge u→dst.
func (c *ConcurrentEngine) UpdateWeight(u, dst VertexID, weight float64) error {
	if c.floatMode {
		return c.ce.UpdateBiasFloat(u, dst, weight)
	}
	ib, err := intWeight(weight)
	if err != nil {
		return err
	}
	return c.ce.UpdateBias(u, dst, ib)
}

// ApplyBatch ingests updates through the batched path while walkers keep
// running: only the lock stripes of touched vertices block, and each only
// for its own per-vertex application.
func (c *ConcurrentEngine) ApplyBatch(ups []Update) (BatchResult, error) {
	internal, err := toInternalUpdates(c.floatMode, ups)
	if err != nil {
		return BatchResult{}, err
	}
	res, err := c.ce.ApplyBatch(internal)
	return BatchResult{Inserted: res.Inserted, Deleted: res.Deleted, NotFound: res.NotFound}, err
}

// DeepWalk runs biased DeepWalk over the live graph; updates may proceed
// concurrently.
func (c *ConcurrentEngine) DeepWalk(o WalkOptions) WalkResult {
	return fromWalk(walk.DeepWalk(c.ce, o.internal()))
}

// Node2Vec runs second-order node2vec walks over the live graph.
func (c *ConcurrentEngine) Node2Vec(o WalkOptions) WalkResult {
	return fromWalk(walk.Node2Vec(c.ce, o.internal()))
}

// PPR runs personalized-PageRank walks over the live graph.
func (c *ConcurrentEngine) PPR(o WalkOptions) WalkResult {
	return fromWalk(walk.PPR(c.ce, o.internal()))
}

// SimpleSampling runs the independent one-hop sampling kernel over the
// live graph.
func (c *ConcurrentEngine) SimpleSampling(o WalkOptions) WalkResult {
	return fromWalk(walk.SimpleSampling(c.ce, o.internal()))
}

// CheckInvariants quiesces the engine and verifies structural invariants
// (tests and debugging; O(V + E·K)).
func (c *ConcurrentEngine) CheckInvariants() error {
	var err error
	c.ce.Quiesce(func(s *core.Sampler) { err = s.CheckInvariants() })
	return err
}

// HubCacheOptions tune the hub-vertex view caches of the serving
// runtimes. The zero value enables caching with defaults; set Off to get
// the pre-cache behavior (every hop through the engine lock, every
// boundary crossing a walker hand-off).
type HubCacheOptions struct {
	// Off disables all cache layers.
	Off bool
	// Size is each walker's local view-LRU capacity (0 = default 256).
	Size int
	// MinDegree is the hub admission threshold: only vertices of at
	// least this degree are cached or served as views (0 = default 8).
	MinDegree int
	// RemoteSize is the per-shard remote-view cache capacity in the
	// sharded runtimes (0 = default 512).
	RemoteSize int
	// RequestAfter is how many walker hand-offs a shard observes toward
	// one non-owned vertex before fetching its view (0 = default 2).
	RequestAfter int
}

func (o HubCacheOptions) spec() fabric.CacheSpec {
	return fabric.CacheSpec{
		Off:          o.Off,
		Size:         o.Size,
		MinDegree:    o.MinDegree,
		RemoteSize:   o.RemoteSize,
		RequestAfter: o.RequestAfter,
	}
}

// RebalanceOptions tune the heat-aware shard rebalancer of the sharded
// serving runtimes. Off by default: set On to let the coordinator watch
// per-shard heat (walk steps per ownership block, reported on ingest
// barriers) and migrate hot blocks off overloaded shards live — walkers
// are re-routed across the ownership flip, never lost, and the feed's
// per-source ordering is preserved (see DESIGN.md, "Heat-aware
// rebalancing"). Zero values select defaults.
type RebalanceOptions struct {
	// On enables the rebalancer.
	On bool
	// Interval is the heat-check period (default 500ms).
	Interval time.Duration
	// Imbalance triggers rebalancing when the hottest shard's share of
	// walk steps exceeds this multiple of the fair share 1/shards
	// (default 1.3).
	Imbalance float64
	// MaxMovesPerCycle bounds block migrations per heat check (default 4).
	MaxMovesPerCycle int
	// MinCycleSteps is the minimum per-cycle step count worth acting on
	// (default 2048).
	MinCycleSteps int64
	// Cooldown is how many heat checks a moved block is pinned before it
	// may move again (default 2).
	Cooldown int
}

func (o RebalanceOptions) opts() rebalance.Options {
	return rebalance.Options{
		On:               o.On,
		Interval:         o.Interval,
		Imbalance:        o.Imbalance,
		MaxMovesPerCycle: o.MaxMovesPerCycle,
		MinCycleSteps:    o.MinCycleSteps,
		Cooldown:         o.Cooldown,
	}
}

// RebalanceStats report the rebalancer's cumulative activity.
type RebalanceStats struct {
	// Migrations counts completed block migrations; MovedEdges the edges
	// they shipped between shards.
	Migrations, MovedEdges int64
	// PlanEpoch is the ownership plan's overlay version (0 = the
	// block-cyclic base plan, never rebalanced).
	PlanEpoch uint64
}

// LiveOptions configure Serve.
type LiveOptions struct {
	// Walkers is the walker-pool size (default GOMAXPROCS).
	Walkers int
	// QueueDepth buffers queries and feed batches (default 256); a full
	// feed queue makes Feed block (backpressure).
	QueueDepth int
	// WalkLength is the default for Query length <= 0 (default 80).
	WalkLength int
	// Seed makes walker RNG streams reproducible.
	Seed uint64
	// HubCache tunes the pool walkers' hub-view caches.
	HubCache HubCacheOptions
	// Kernel selects the stepping-kernel mode for bulk walks run through
	// the service: "sparse", "dense", or "auto" (default; unknown values
	// fall back to auto).
	Kernel string
}

// LiveStats snapshots a LiveWalker's counters.
type LiveStats struct {
	// Queries and Steps count served walk queries and their total steps.
	Queries, Steps int64
	// Batches and Updates count ingested feed batches and their events.
	Batches, Updates int64
	// Dropped counts feed batches whose application failed; the first
	// error is reported by Close, and ingestion continues past it.
	Dropped int64
	// CacheHits and CacheStale report the walkers' hub-view caches:
	// lock-free hops served, and views dropped on epoch mismatch.
	CacheHits, CacheStale int64
}

// LiveWalker serves walk queries from a walker pool while a streaming
// update feed mutates the graph — the paper's dynamic-graph serving
// scenario as an API.
type LiveWalker struct {
	svc       *walk.LiveService
	floatMode bool
}

// Serve starts a walker pool plus ingest loop over the engine.
func (c *ConcurrentEngine) Serve(o LiveOptions) *LiveWalker {
	kernel, _ := walk.ParseKernelMode(o.Kernel)
	svc := walk.NewLiveService(c.ce, walk.LiveConfig{
		Walkers:    o.Walkers,
		QueueDepth: o.QueueDepth,
		WalkLength: o.WalkLength,
		Seed:       o.Seed,
		Cache:      o.HubCache.spec(),
		Kernel:     kernel,
	})
	return &LiveWalker{svc: svc, floatMode: c.floatMode}
}

// Query walks from start for up to length steps (<= 0 selects the default)
// and returns the visited path, start included.
func (lw *LiveWalker) Query(start VertexID, length int) ([]VertexID, error) {
	return lw.svc.Query(start, length)
}

// Feed enqueues updates for ingestion. It blocks when the feed queue is
// full and fails with an error after Close.
func (lw *LiveWalker) Feed(ups []Update) error {
	internal, err := toInternalUpdates(lw.floatMode, ups)
	if err != nil {
		return err
	}
	return lw.svc.Feed(internal)
}

// Stats snapshots the service counters.
func (lw *LiveWalker) Stats() LiveStats {
	st := lw.svc.Stats()
	return LiveStats{
		Queries: st.Queries, Steps: st.Steps,
		Batches: st.Batches, Updates: st.Updates, Dropped: st.Dropped,
		CacheHits: st.CacheHits, CacheStale: st.CacheStale,
	}
}

// Close drains both queues, stops the pool, and returns the first ingest
// error. Idempotent.
func (lw *LiveWalker) Close() error { return lw.svc.Close() }

// ---------------------------------------------------------------------------
// Sharded serving

// ShardedOptions configure ServeSharded.
type ShardedOptions struct {
	// WalkersPerShard sizes each shard's walker crew (default
	// max(1, GOMAXPROCS / shards)).
	WalkersPerShard int
	// QueueDepth buffers the feed and per-shard ingest queues (default
	// 256); a full feed queue makes Feed block (backpressure).
	QueueDepth int
	// WalkLength is the default for Query length <= 0 (default 80).
	WalkLength int
	// Seed makes query RNG streams reproducible.
	Seed uint64
	// Concurrency tunes each shard's concurrency wrapper (zero value =
	// defaults).
	Concurrency ConcurrentConfig
	// HubCache tunes the shards' hub-view caches.
	HubCache HubCacheOptions
	// Rebalance tunes the heat-aware shard rebalancer (off by default).
	Rebalance RebalanceOptions
	// Replicas is the block ownership replication factor (default 1 = no
	// replication). With Replicas = R, every ownership block's rows live
	// on R consecutive shards, fed from the same routed update stream, and
	// the runtime survives shard failures by promoting a replica (a
	// dead-mask flip — the replicas are already identical). Mutually
	// exclusive with Rebalance; at most 64 shards.
	Replicas int
	// CreditWindow bounds per-shard in-flight (routed but unapplied)
	// update events; a full window blocks Feed (0 = default 16384,
	// negative disables).
	CreditWindow int
	// Kernel selects the shard crews' stepping-kernel mode: "sparse",
	// "dense", or "auto" (default).
	Kernel string
}

// HubCacheStats report the hub-view cache layers of a sharded runtime.
type HubCacheStats struct {
	// LocalHits counts hops served lock-free from a crew walker's own
	// view cache; LocalStale counts views dropped on epoch mismatch.
	LocalHits, LocalStale int64
	// RemoteHits counts hops at non-owned vertices served from a peer's
	// shipped view instead of a walker hand-off; RemoteStale counts
	// remote views dropped by watermark invalidation.
	RemoteHits, RemoteStale int64
	// ViewRequests and ViewsServed count the fabric's view fetch
	// traffic (issued and answered, respectively).
	ViewRequests, ViewsServed int64
}

// ShardedLiveStats snapshots a ShardedLiveWalker's counters. Transfers
// and Local split walk steps into cross-shard hand-offs and steps that
// stayed on the owning shard; Cache.RemoteHits are boundary crossings
// the hub cache absorbed.
type ShardedLiveStats struct {
	Queries, Steps            int64
	Batches, Updates, Dropped int64
	Transfers, Local          int64
	Cache                     HubCacheStats
	// ShardSteps splits Steps by serving shard — the load-share view the
	// rebalancer acts on (live for in-process shards, as of the last
	// Sync for remote daemons).
	ShardSteps []int64
	// Corpus reports standing-walk-corpus maintenance riding on this
	// service when one is attached (see CorpusWalker.ServiceStats; only
	// the maintenance tallies — Resamples through Fallbacks — are
	// populated here, serving counters stay on CorpusWalker.Stats).
	Corpus CorpusStats
	// Rebalance reports the heat-aware rebalancer's activity.
	Rebalance RebalanceStats
	// Failover reports replica-failover activity (replicated sessions):
	// shard-link deaths, walkers re-routed or relaunched across them, and
	// completed rejoin cycles with their copied snapshot blocks.
	Failover FailoverStats
	// Backpressure reports the ingest credit window's activity.
	Backpressure BackpressureStats
}

// FailoverStats report a replicated session's failover activity.
type FailoverStats struct {
	// Deaths counts shard-link death events; Reroutes walkers re-routed
	// to a live replica mid-walk; Relaunches walker clones relaunched
	// because their originals may have died with a daemon.
	Deaths, Reroutes, Relaunches int64
	// Rejoins counts completed rejoin/failback cycles; CopiedBlocks the
	// snapshot blocks shipped while re-priming rejoined shards.
	Rejoins, CopiedBlocks int64
}

// BackpressureStats report the ingest credit window's observed pressure.
type BackpressureStats struct {
	// Window is the configured per-shard credit window (0 = disabled).
	Window int64
	// MaxOutstanding is the largest admitted per-shard in-flight update
	// event count; Stalled is the total time the feed router spent
	// blocked waiting for shard credits.
	MaxOutstanding int64
	Stalled        time.Duration
}

// TransferRatio is walker hand-offs per sampled hop — the share of walk
// progress that cost a cross-shard transfer (hops the hub cache served
// from remote views cross shard ownership without a hand-off).
func (s ShardedLiveStats) TransferRatio() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.Transfers) / float64(s.Steps)
}

func fromCacheTallies(t fabric.CacheTallies) HubCacheStats {
	return HubCacheStats{
		LocalHits: t.LocalHits, LocalStale: t.LocalStale,
		RemoteHits: t.RemoteHits, RemoteStale: t.RemoteStale,
		ViewRequests: t.ViewRequests, ViewsServed: t.ViewsServed,
	}
}

// ShardedLiveWalker serves walk queries through the sharded live runtime:
// N per-shard concurrent engines, an ingest router splitting feed batches
// by owner shard, and cross-shard walker transfer — the supplement §9.1
// partitioned topology as a live Query/Feed service. The API mirrors
// LiveWalker, plus Sync (an ingest barrier) and transfer telemetry.
type ShardedLiveWalker struct {
	svc       *walk.ShardedLiveService
	floatMode bool
}

// ServeSharded partitions the engine's current graph into shards vertex
// ranges (block-cyclic, so ownership stays total while the live feed grows
// the vertex space), builds one concurrent engine per shard, and starts
// the sharded serving runtime. The engine's graph is snapshotted at this
// call; the original Engine remains usable but further mutations to it are
// not reflected in the service — feed them through the service instead.
func (e *Engine) ServeSharded(shards int, o ShardedOptions) (*ShardedLiveWalker, error) {
	if shards < 1 {
		shards = 1
	}
	g := e.s.Snapshot()
	plan := walk.NewShardPlan(g.NumVertices(), shards)
	if o.Replicas > 1 {
		plan.Replicas = o.Replicas
	}
	engines, err := walk.BootstrapShards(g, plan, func() (walk.LiveEngine, error) {
		s, err := core.New(g.NumVertices(), e.s.Config())
		if err != nil {
			return nil, err
		}
		return concurrent.Wrap(s, concurrent.Config{
			Stripes:        o.Concurrency.Stripes,
			MaxStepRetries: o.Concurrency.MaxStepRetries,
			Workers:        o.Concurrency.Workers,
		}), nil
	})
	if err != nil {
		return nil, err
	}
	kernel, err := walk.ParseKernelMode(o.Kernel)
	if err != nil {
		return nil, err
	}
	svc, err := walk.NewShardedLiveService(engines, plan, walk.ShardedLiveConfig{
		WalkersPerShard: o.WalkersPerShard,
		QueueDepth:      o.QueueDepth,
		WalkLength:      o.WalkLength,
		Seed:            o.Seed,
		Cache:           o.HubCache.spec(),
		Kernel:          kernel,
		Rebalance:       o.Rebalance.opts(),
		CreditWindow:    o.CreditWindow,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedLiveWalker{svc: svc, floatMode: e.s.Config().FloatBias}, nil
}

// Shards returns the partition count.
func (sw *ShardedLiveWalker) Shards() int { return sw.svc.Shards() }

// Query walks from start for up to length steps (<= 0 selects the
// default) across the sharded runtime and returns the visited path, start
// included.
func (sw *ShardedLiveWalker) Query(start VertexID, length int) ([]VertexID, error) {
	return sw.svc.Query(start, length)
}

// Feed enqueues updates; the router splits them by owner shard while
// preserving per-source order. It blocks when the feed queue is full and
// fails with an error after Close.
func (sw *ShardedLiveWalker) Feed(ups []Update) error {
	internal, err := toInternalUpdates(sw.floatMode, ups)
	if err != nil {
		return err
	}
	return sw.svc.Feed(internal)
}

// Sync blocks until every batch accepted before the call is applied on
// its shards, then reports the first ingest error — the barrier between
// "fed" and "visible to queries".
func (sw *ShardedLiveWalker) Sync() error { return sw.svc.Sync() }

// DeepWalk runs a bulk first-order walk through the sharded runtime while
// the feed keeps ingesting, returning the run's transfer stats alongside
// the result.
func (sw *ShardedLiveWalker) DeepWalk(o WalkOptions) (WalkResult, ShardedLiveStats, error) {
	res, ts, err := sw.svc.DeepWalk(o.internal())
	st := ShardedLiveStats{Steps: res.Steps, Transfers: ts.Transfers, Local: ts.Local}
	st.Cache.RemoteHits = ts.Remote
	return fromWalk(res), st, err
}

// Stats snapshots the service counters.
func (sw *ShardedLiveWalker) Stats() ShardedLiveStats {
	return fromShardedStats(sw.svc.Stats())
}

func fromShardedStats(st walk.ShardedLiveStats) ShardedLiveStats {
	return ShardedLiveStats{
		Queries: st.Queries, Steps: st.Steps,
		Batches: st.Batches, Updates: st.Updates, Dropped: st.Dropped,
		Transfers: st.Transfers, Local: st.Local,
		Cache:      fromCacheTallies(st.Cache),
		ShardSteps: st.ShardSteps,
		Corpus:     fromCorpusTallies(st.Corpus),
		Rebalance: RebalanceStats{
			Migrations: st.Rebalance.Migrations,
			MovedEdges: st.Rebalance.MovedEdges,
			PlanEpoch:  st.Rebalance.PlanEpoch,
		},
		Failover: FailoverStats{
			Deaths:       st.Failover.Deaths,
			Reroutes:     st.Failover.Reroutes,
			Relaunches:   st.Failover.Relaunches,
			Rejoins:      st.Failover.Rejoins,
			CopiedBlocks: st.Failover.CopiedBlocks,
		},
		Backpressure: BackpressureStats{
			Window:         st.Backpressure.Window,
			MaxOutstanding: st.Backpressure.MaxOutstanding,
			Stalled:        st.Backpressure.Stalled,
		},
	}
}

// Close drains the feed, waits for in-flight walkers, stops the shard
// crews, and returns the first ingest error. Idempotent.
func (sw *ShardedLiveWalker) Close() error { return sw.svc.Close() }

// ---------------------------------------------------------------------------
// Multi-process serving (shard daemons over the TCP fabric)

// RemoteOptions configure ServeRemote.
type RemoteOptions struct {
	// QueueDepth buffers the coordinator's feed queue (default 256); a
	// full queue makes Feed block (backpressure).
	QueueDepth int
	// WalkLength is the default for Query length <= 0 (default 80).
	WalkLength int
	// Seed makes query RNG streams reproducible.
	Seed uint64
	// HubCache tunes the daemons' hub-view caches; the session Hello
	// carries it, so the coordinator decides the cache policy for the
	// whole session.
	HubCache HubCacheOptions
	// Rebalance tunes the heat-aware shard rebalancer (off by default).
	// The coordinator drives migrations; the daemons execute them.
	Rebalance RebalanceOptions
	// Replication is the block ownership replication factor (default 1 =
	// no replication). With factor R every ownership block's rows live on
	// R consecutive daemons fed from the same routed stream, the
	// coordinator survives daemon deaths by promoting replicas (a
	// dead-mask flip), and dead daemons that come back are re-primed from
	// live replica snapshots. Mutually exclusive with Rebalance; at most
	// 64 shards.
	Replication int
	// CreditWindow bounds per-daemon in-flight (routed but unapplied)
	// update events; a full window blocks Feed instead of growing daemon
	// memory (0 = default 16384, negative disables).
	CreditWindow int
	// Kernel selects the daemons' stepping-kernel mode: "sparse",
	// "dense", or "auto" (default). The session Hello carries it, so the
	// coordinator decides the kernel policy for the whole session.
	Kernel string
}

// RemoteWalker serves walk queries across a set of shard-daemon
// processes: the same coordinator ShardedLiveWalker runs in-process,
// driving walker transfers, routed feeds, and sync barriers over the TCP
// shard fabric instead of channels. The API mirrors ShardedLiveWalker;
// ingest-side counters (Updates, Dropped) are exact as of the last Sync,
// since the shards report them through barrier acknowledgements.
type RemoteWalker struct {
	svc       *walk.RemoteService
	floatMode bool
}

// ServeRemote partitions the engine's current graph across one shard
// daemon per address (each a `bingowalk -shard-serve` process, already
// listening) and starts a serving session: every daemon receives the
// partition geometry and engine spec, is fed exactly the rows it owns,
// and the call returns once a sync barrier confirms the bootstrap landed.
// The engine's graph is snapshotted at this call; feed later mutations
// through the returned walker.
func (e *Engine) ServeRemote(addrs []string, o RemoteOptions) (*RemoteWalker, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("bingo: ServeRemote needs at least one shard address")
	}
	g := e.s.Snapshot()
	plan := walk.NewShardPlan(g.NumVertices(), len(addrs))
	if o.Replication > 1 {
		plan.Replicas = o.Replication
	}
	if _, err := walk.ParseKernelMode(o.Kernel); err != nil {
		return nil, err
	}
	floatMode := e.s.Config().FloatBias
	port, err := tcpgob.DialWith(addrs, fabric.Hello{
		RangeSize:   plan.RangeSize,
		NumVertices: g.NumVertices(),
		FloatBias:   floatMode,
		Cache:       o.HubCache.spec(),
		Replicas:    plan.Replicas,
		Kernel:      o.Kernel,
	}, tcpgob.DialConfig{Resilient: plan.Replicas > 1})
	if err != nil {
		return nil, err
	}
	svc, err := walk.NewRemoteService(port, plan, g.NumVertices(), walk.ShardedLiveConfig{
		QueueDepth:   o.QueueDepth,
		WalkLength:   o.WalkLength,
		Seed:         o.Seed,
		Rebalance:    o.Rebalance.opts(),
		CreditWindow: o.CreditWindow,
	})
	if err != nil {
		port.Close()
		return nil, err
	}
	if err := svc.Bootstrap(g); err != nil {
		svc.Close()
		return nil, fmt.Errorf("bingo: bootstrapping shards: %w", err)
	}
	return &RemoteWalker{svc: svc, floatMode: floatMode}, nil
}

// Shards returns the partition (daemon) count.
func (rw *RemoteWalker) Shards() int { return rw.svc.Shards() }

// NumVertices returns the widest vertex space observed across the shard
// daemons (exact as of the last Sync).
func (rw *RemoteWalker) NumVertices() int { return rw.svc.NumVertices() }

// Query walks from start for up to length steps (<= 0 selects the
// default) across the shard daemons and returns the visited path, start
// included.
func (rw *RemoteWalker) Query(start VertexID, length int) ([]VertexID, error) {
	return rw.svc.Query(start, length)
}

// Feed enqueues updates; the coordinator routes them to their owner
// daemons preserving per-source order. It blocks when the feed queue is
// full and fails with an error after Close.
func (rw *RemoteWalker) Feed(ups []Update) error {
	internal, err := toInternalUpdates(rw.floatMode, ups)
	if err != nil {
		return err
	}
	return rw.svc.Feed(internal)
}

// Sync blocks until every batch accepted before the call is applied on
// its daemons, then reports the first ingest error — and refreshes the
// ack-carried tallies Stats reads.
func (rw *RemoteWalker) Sync() error { return rw.svc.Sync() }

// DeepWalk runs a bulk first-order walk across the shard daemons while
// the feed keeps ingesting.
func (rw *RemoteWalker) DeepWalk(o WalkOptions) (WalkResult, ShardedLiveStats, error) {
	res, ts, err := rw.svc.DeepWalk(o.internal())
	st := ShardedLiveStats{Steps: res.Steps, Transfers: ts.Transfers, Local: ts.Local}
	st.Cache.RemoteHits = ts.Remote
	return fromWalk(res), st, err
}

// Stats snapshots the session counters (Updates/Dropped, per-shard
// steps, and the cache tallies as of the last Sync).
func (rw *RemoteWalker) Stats() ShardedLiveStats {
	return fromShardedStats(rw.svc.Stats())
}

// Close ends the session: the feed drains, in-flight walkers retire, the
// daemons wind down and exit their serving loop. Idempotent.
func (rw *RemoteWalker) Close() error { return rw.svc.Close() }

// ---------------------------------------------------------------------------
// Read-coordinators (query-tier scale-out)

// ReaderOptions configure AttachReader.
type ReaderOptions struct {
	// WalkLength is the default for Query length <= 0 (default 80).
	WalkLength int
	// Seed makes the reader's query RNG streams reproducible.
	Seed uint64
	// HubCache tunes the reader's own hub-view cache — the layer that
	// serves hops without any shard round trip (zero value = enabled with
	// defaults; Off disables reader-local serving).
	HubCache HubCacheOptions
}

// ReaderWalkerStats snapshot a read-coordinator's activity.
type ReaderWalkerStats struct {
	// Queries and Steps count completed Query walks and their hops;
	// Transfers the cross-shard hand-offs inside shard-served segments.
	Queries, Steps, Transfers int64
	// LocalHits counts hops served from the reader's own hub-view cache
	// (no shard round trip); Launches walker launches into the shard
	// set; ViewRequests hub views requested from owners; CachedViews the
	// current cache population.
	LocalHits, Launches, ViewRequests int64
	CachedViews                       int
	// PlanEpoch is the reader's view of the live ownership-plan version,
	// kept current by the write-coordinator's broadcast stream;
	// PlanFlips counts epoch/liveness changes observed (each drops the
	// view cache); Applied is the newest applied-update stamp received.
	PlanEpoch uint64
	PlanFlips int64
	Applied   int64
}

// ReaderWalker is a read-coordinator: a Query/DeepWalk front end
// attached to a shard set another process (or service) writes to.
// Exactly one write session owns ingest, credit flow, and rebalancing;
// any number of ReaderWalkers serve queries beside it, each keeping its
// routing and hub-view cache valid through the write-coordinator's
// broadcast stream. Serving is bounded-staleness: AppliedStamp reports
// how much ingest this reader's answers are guaranteed to reflect, and
// WaitApplied(stamp) blocks until the writer's stamp (its AppliedStamp
// after a Sync) is covered.
type ReaderWalker struct {
	svc *walk.ReaderService
}

// AttachReader attaches a read-coordinator to a running shard-daemon set
// over the TCP fabric. addrs must list the same daemons (in the same
// order) as the write session's ServeRemote; the attach fails if no
// write session is live. The reader serves queries without mediating
// ingest and detaches independently with Close.
func AttachReader(addrs []string, o ReaderOptions) (*ReaderWalker, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("bingo: AttachReader needs at least one shard address")
	}
	port, err := tcpgob.DialReader(addrs, fabric.Hello{})
	if err != nil {
		return nil, err
	}
	svc, err := walk.NewRemoteReader(port, walk.ReaderConfig{
		WalkLength: o.WalkLength,
		Seed:       o.Seed,
		Cache:      o.HubCache.spec(),
	})
	if err != nil {
		return nil, err
	}
	return &ReaderWalker{svc: svc}, nil
}

// AttachReader attaches an in-process read-coordinator to this walker's
// shard set: the returned ReaderWalker serves Query/DeepWalk against the
// same shard engines while this walker keeps exclusive ownership of
// ingest and rebalancing.
func (sw *ShardedLiveWalker) AttachReader(o ReaderOptions) (*ReaderWalker, error) {
	svc, err := sw.svc.AttachReader(walk.ReaderConfig{
		WalkLength: o.WalkLength,
		Seed:       o.Seed,
		Cache:      o.HubCache.spec(),
	})
	if err != nil {
		return nil, err
	}
	return &ReaderWalker{svc: svc}, nil
}

// Query walks from start for up to length steps (<= 0 selects the
// default) and returns the visited path, start included. Hops are served
// from the reader's hub-view cache when a valid cached view covers the
// walker's position; the remainder runs on the shard set.
func (rd *ReaderWalker) Query(start VertexID, length int) ([]VertexID, error) {
	return rd.svc.Query(start, length)
}

// DeepWalk runs a bulk first-order walk through the shard set from this
// reader while the write session keeps ingesting.
func (rd *ReaderWalker) DeepWalk(o WalkOptions) (WalkResult, error) {
	res, _, err := rd.svc.DeepWalk(o.internal())
	return fromWalk(res), err
}

// NumVertices returns the reader's view of the vertex-space size (kept
// current by the broadcast stream).
func (rd *ReaderWalker) NumVertices() int { return rd.svc.NumVertices() }

// AppliedStamp returns the newest applied-update stamp the broadcast
// stream has delivered — how much of the write session's ingest this
// reader's serving is guaranteed to reflect.
func (rd *ReaderWalker) AppliedStamp() int64 { return rd.svc.AppliedStamp() }

// WaitApplied blocks until the reader's applied stamp reaches stamp
// (typically the write side's AppliedStamp() after a Sync), then
// returns nil; it fails if the write session ends first.
func (rd *ReaderWalker) WaitApplied(stamp int64) error { return rd.svc.WaitApplied(stamp) }

// Stats snapshots the reader's counters.
func (rd *ReaderWalker) Stats() ReaderWalkerStats {
	st := rd.svc.Stats()
	return ReaderWalkerStats{
		Queries: st.Queries, Steps: st.Steps, Transfers: st.Transfers,
		LocalHits: st.LocalHits, Launches: st.Launches, ViewRequests: st.ViewRequests,
		CachedViews: st.CachedViews,
		PlanEpoch:   st.PlanEpoch, PlanFlips: st.PlanFlips, Applied: st.Applied,
	}
}

// Close detaches the reader. The write session and every other reader
// are unaffected. Idempotent.
func (rd *ReaderWalker) Close() error { return rd.svc.Close() }

// ShardServeOptions configure ServeShard.
type ShardServeOptions struct {
	// Walkers is the hosted shard's crew size (default GOMAXPROCS — the
	// daemon owns its process).
	Walkers int
	// Concurrency tunes the shard's concurrency wrapper (zero value =
	// defaults).
	Concurrency ConcurrentConfig
	// Sessions is how many coordinator sessions to serve before
	// returning: 0 serves exactly one (the pre-multi-session behavior),
	// negative serves indefinitely — the daemon loops back to accepting
	// a new coordinator Hello after each session tears down, with a
	// fresh engine per session.
	Sessions int
	// OnListen, if non-nil, receives the bound listen address before the
	// call blocks waiting for a coordinator (useful with ":0" ports).
	OnListen func(addr string)
	// OnSession, if non-nil, receives each completed session's index
	// (from 0), tallies, and error.
	OnSession func(session int, st ShardServeStats, err error)
}

// ShardServeStats summarizes a completed shard-daemon session.
type ShardServeStats struct {
	Steps, Transfers, Local int64
	Updates, Dropped        int64
	Vertices                int
	Edges                   int64
	Cache                   HubCacheStats
}

// ServeShard hosts one shard of a multi-process serving session: it
// listens on addr, waits for a coordinator (an Engine.ServeRemote call
// elsewhere) to open a session, builds a concurrent engine from the
// announced spec, and serves walker transfers, hub-view traffic, and
// routed ingest until the coordinator closes the session. With
// Sessions != 0 the daemon then loops back to accepting the next
// coordinator Hello instead of exiting (each session gets a fresh
// engine; a stray peer stream from a torn-down session is refused by its
// session nonce). shard/shards are this daemon's claimed position,
// validated against every coordinator's Hello (pass shards <= 0 to
// accept any count). It returns the final session's stats. This is the
// body of `bingowalk -shard-serve`.
func ServeShard(addr string, shard, shards int, o ShardServeOptions) (ShardServeStats, error) {
	l, err := tcpgob.Listen(addr, shard, shards)
	if err != nil {
		return ShardServeStats{}, err
	}
	defer l.Close()
	if o.OnListen != nil {
		o.OnListen(l.Addr().String())
	}
	sessions := o.Sessions
	if sessions == 0 {
		sessions = 1
	}
	var last ShardServeStats
	var lastErr error
	for n := 0; sessions < 0 || n < sessions; n++ {
		sc, hello, err := l.Accept()
		if err != nil {
			return last, err
		}
		last, lastErr = serveOneShardSession(sc, hello, shard, o)
		if o.OnSession != nil {
			o.OnSession(n, last, lastErr)
		}
	}
	return last, lastErr
}

// serveOneShardSession builds a session-scoped engine from the Hello and
// runs the shard node until the coordinator ends the session.
func serveOneShardSession(sc *tcpgob.ShardConn, hello fabric.Hello, shard int, o ShardServeOptions) (ShardServeStats, error) {
	cfg := core.DefaultConfig()
	cfg.FloatBias = hello.FloatBias
	s, err := core.New(hello.NumVertices, cfg)
	if err != nil {
		sc.Close()
		return ShardServeStats{}, err
	}
	eng := concurrent.Wrap(s, concurrent.Config{
		Stripes:        o.Concurrency.Stripes,
		MaxStepRetries: o.Concurrency.MaxStepRetries,
		Workers:        o.Concurrency.Workers,
	})
	walkers := o.Walkers
	if walkers <= 0 {
		walkers = runtime.GOMAXPROCS(0)
	}
	plan := walk.ShardPlan{
		Shards: hello.Shards, RangeSize: hello.RangeSize,
		Epoch: hello.PlanEpoch, Overlay: hello.Overlay,
		Replicas: hello.Replicas, DeadMask: hello.DeadMask,
	}
	kernel, kerr := walk.ParseKernelMode(hello.Kernel)
	if kerr != nil {
		// An unknown mode from a newer coordinator falls back to auto
		// rather than tearing down the session.
		kernel = walk.KernelAuto
	}
	st, err := walk.RunShardNode(eng, plan, shard, sc, walkers, hello.Cache, kernel)
	return ShardServeStats{
		Steps: st.Steps, Transfers: st.Transfers, Local: st.Local,
		Updates: st.Updates, Dropped: st.Dropped,
		Vertices: st.Vertices, Edges: st.Edges,
		Cache: fromCacheTallies(st.Cache),
	}, err
}
