module github.com/bingo-rw/bingo

go 1.22
