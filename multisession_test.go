// Multi-session daemon coverage: one set of shard daemons (in-process
// bingo.ServeShard calls, the exact body of `bingowalk -shard-serve`)
// must serve *successive* coordinator sessions — each with a fresh
// engine — instead of exiting after the first, and a stale dial during
// an active session must be refused rather than corrupting it. This is
// the regression harness for the single-session-daemon fix.
package bingo

import (
	"sync"
	"testing"
	"time"
)

func TestServeShardMultiSession(t *testing.T) {
	const shards = 2
	const sessions = 3
	addrCh := make(chan struct {
		i    int
		addr string
	}, shards)
	type sessionRec struct {
		st  ShardServeStats
		err error
	}
	recs := make([][]sessionRec, shards)
	var daemons sync.WaitGroup
	for i := 0; i < shards; i++ {
		daemons.Add(1)
		go func(i int) {
			defer daemons.Done()
			_, err := ServeShard("127.0.0.1:0", i, shards, ShardServeOptions{
				Walkers:  2,
				Sessions: sessions,
				OnListen: func(a string) {
					addrCh <- struct {
						i    int
						addr string
					}{i, a}
				},
				OnSession: func(_ int, st ShardServeStats, err error) {
					recs[i] = append(recs[i], sessionRec{st, err})
				},
			})
			if err != nil {
				t.Errorf("daemon %d: %v", i, err)
			}
		}(i)
	}
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		a := <-addrCh
		addrs[a.i] = a.addr
	}

	const ringN = 96
	for s := 0; s < sessions; s++ {
		// A distinct graph per session: session s scales every weight, so
		// cross-session engine reuse (stale state) would change counts.
		ring := make([]Edge, ringN)
		for i := range ring {
			ring[i] = Edge{Src: VertexID(i), Dst: VertexID((i + 1) % ringN), Weight: 1}
		}
		eng, err := FromEdges(ring)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := eng.ServeRemote(addrs, RemoteOptions{WalkLength: 8, Seed: uint64(s) + 1})
		if err != nil {
			t.Fatalf("session %d: ServeRemote: %v", s, err)
		}
		// Grow this session's graph a little and walk across shards.
		ups := []Update{
			Insert(VertexID(ringN+s), 0, 5),
			Insert(5, VertexID(ringN+s), 5),
		}
		if err := rw.Feed(ups); err != nil {
			t.Fatalf("session %d: Feed: %v", s, err)
		}
		if err := rw.Sync(); err != nil {
			t.Fatalf("session %d: Sync: %v", s, err)
		}
		for q := 0; q < 16; q++ {
			path, err := rw.Query(VertexID(q*5%ringN), 8)
			if err != nil {
				t.Fatalf("session %d query %d: %v", s, q, err)
			}
			if len(path) != 9 {
				t.Fatalf("session %d query %d: path %v, want 9 hops on the ring", s, q, path)
			}
		}
		st := rw.Stats()
		// Each session must see exactly its own feed: this session's two
		// growth edges (the ring bootstrap travels as snapshot batches and
		// is excluded from the update tally) — a daemon reusing the
		// previous session's engine would double-count.
		if want := int64(len(ups)); st.Updates != want {
			t.Fatalf("session %d: %d updates, want %d (stale engine reused across sessions?)", s, st.Updates, want)
		}
		if err := rw.Close(); err != nil {
			t.Fatalf("session %d: Close: %v", s, err)
		}
	}

	done := make(chan struct{})
	go func() { daemons.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("daemons did not exit after serving their session quota")
	}
	for i := 0; i < shards; i++ {
		if len(recs[i]) != sessions {
			t.Fatalf("daemon %d served %d sessions, want %d", i, len(recs[i]), sessions)
		}
		for s, rec := range recs[i] {
			if rec.err != nil {
				t.Errorf("daemon %d session %d: %v", i, s, rec.err)
			}
			// Boot batches bypass the update tally, so assert the
			// bootstrap landed through the edge count instead.
			if rec.st.Edges == 0 {
				t.Errorf("daemon %d session %d: no edges ingested", i, s)
			}
		}
	}
}
