package bingo

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestWriteDeepWalkCorpus(t *testing.T) {
	eng, err := FromEdges([]Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := eng.WriteDeepWalkCorpus(WalkOptions{Length: 10, Seed: 3}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || res.Walkers != 3 {
		t.Fatalf("lines %d, walkers %d", len(lines), res.Walkers)
	}
	var steps int64
	for li, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 11 { // start + 10 hops on a cycle
			t.Fatalf("line %d has %d fields", li, len(fields))
		}
		// Consecutive vertices must be actual edges of the cycle.
		prev := -1
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 || v > 2 {
				t.Fatalf("bad vertex %q", f)
			}
			if prev >= 0 {
				if v != (prev+1)%3 {
					t.Fatalf("non-edge transition %d→%d", prev, v)
				}
				steps++
			}
			prev = v
		}
	}
	if steps != res.Steps {
		t.Errorf("corpus steps %d, result says %d", steps, res.Steps)
	}
}

func TestWriteDeepWalkCorpusDeadEnd(t *testing.T) {
	eng, err := FromEdges([]Edge{{Src: 0, Dst: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.WriteDeepWalkCorpus(WalkOptions{Length: 10, Seed: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "0 1" {
		t.Errorf("walk from 0 = %q, want \"0 1\"", lines[0])
	}
	if lines[1] != "1" {
		t.Errorf("walk from dead-end 1 = %q, want \"1\"", lines[1])
	}
}

func TestPublicUpdateWeightAndDeleteVertex(t *testing.T) {
	eng := quickEngine(t)
	if err := eng.UpdateWeight(2, 1, 9); err != nil {
		t.Fatal(err)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateWeight(2, 1, 0.4); err == nil {
		t.Error("sub-integer weight accepted in integer mode")
	}
	if err := eng.DeleteVertex(2); err != nil {
		t.Fatal(err)
	}
	if eng.Degree(2) != 0 {
		t.Error("DeleteVertex left edges")
	}
	if err := eng.DeleteVertexEverywhere(1); err != nil {
		t.Fatal(err)
	}
	if eng.HasEdge(0, 1) {
		t.Error("in-edge to 1 survived DeleteVertexEverywhere")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// failingWriter errors after n bytes, for error-path coverage.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.n -= len(p)
	if f.n < 0 {
		return 0, errWriterFull
	}
	return len(p), nil
}

var errWriterFull = &writerFullError{}

type writerFullError struct{}

func (*writerFullError) Error() string { return "writer full" }

func TestWriteDeepWalkCorpusWriterError(t *testing.T) {
	eng, err := FromEdges([]Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]VertexID, 10000)
	_, err = eng.WriteDeepWalkCorpus(WalkOptions{Length: 80, Starts: starts, Seed: 1}, &failingWriter{n: 64})
	if err == nil {
		t.Error("writer error swallowed")
	}
}
