package bingo

import "testing"

// testServeCorpus drives the public standing-corpus surface end to end
// on a given shard count: grow the corpus from a snapshot, feed churn
// through the walker, Sync, and check the slices, the watermark
// contract, and the amplification tallies.
func testServeCorpus(t *testing.T, shards int) {
	const verts = 48
	edges := make([]Edge, 0, verts*2)
	for v := 0; v < verts; v++ {
		// A hub-and-ring graph: vertex 0 is on most walks, so churn on its
		// out-edges dirties a large share of the corpus.
		if v != 0 {
			edges = append(edges, Edge{Src: VertexID(v), Dst: 0, Weight: 3})
		}
		edges = append(edges, Edge{Src: VertexID(v), Dst: VertexID((v + 1) % verts), Weight: 1})
	}
	eng, err := FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := eng.ServeCorpus(shards, CorpusOptions{Walks: 2, WalkLength: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()

	if st := cw.Stats(); st.Walks != int64(verts*2) {
		t.Fatalf("corpus holds %d walks, want %d", st.Walks, verts*2)
	}
	for v := 0; v < verts; v++ {
		path, err := cw.Query(VertexID(v), 12)
		if err != nil {
			t.Fatalf("Query %d: %v", v, err)
		}
		if len(path) != 13 || path[0] != VertexID(v) {
			t.Fatalf("Query %d: path %v", v, path)
		}
	}

	// Hub churn through the walker: delete/restore the hub's ring edge.
	for i := 0; i < 50; i++ {
		if err := cw.Feed([]Update{Delete(0, 1), Insert(0, 1, 1)}); err != nil {
			t.Fatalf("Feed %d: %v", i, err)
		}
	}
	if err := cw.Sync(); err != nil {
		t.Fatal(err)
	}
	st := cw.Stats()
	if st.FedEvents != 100 || st.CorpusWatermark != 100 {
		t.Fatalf("watermarks fed %d / corpus %d, want 100 / 100 after Sync", st.FedEvents, st.CorpusWatermark)
	}
	if shards > 1 && st.AppliedStamp != 100 {
		t.Fatalf("backend applied stamp %d, want 100", st.AppliedStamp)
	}
	if st.Resamples == 0 || st.ResampledSteps == 0 {
		t.Fatalf("hub churn triggered no resampling: %+v", st)
	}
	if a := st.Amplification(); a <= 0 || a >= 1 {
		t.Fatalf("amplification %v, want in (0, 1)", a)
	}
	if st.CorpusServed < int64(verts) {
		t.Fatalf("only %d corpus-served queries of %d", st.CorpusServed, st.Queries)
	}

	// An over-length query takes the fresh-walk fallback.
	if _, err := cw.Query(0, 40); err != nil {
		t.Fatalf("fallback query: %v", err)
	}
	if cw.Stats().Fallbacks == 0 {
		t.Fatal("over-length query did not fall back")
	}
	// The maintenance tallies ride the service stats' Corpus field.
	if got := cw.ServiceStats().Corpus.Resamples; got != st.Resamples {
		t.Fatalf("ServiceStats Corpus.Resamples %d, want %d", got, st.Resamples)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServeCorpusUnsharded(t *testing.T) { testServeCorpus(t, 1) }
func TestServeCorpusSharded(t *testing.T)   { testServeCorpus(t, 4) }
