GO ?= go
STATICCHECK ?= staticcheck

.PHONY: all build vet lint test race bench bench-smoke distserve-smoke fuzz clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Install the pinned tool with:
#   go install honnef.co/go/tools/cmd/staticcheck@2024.1.1
lint:
	$(STATICCHECK) ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the walk-while-ingest
# engine, the core sampler it wraps, the live service, and the wire
# fabric (batched senders + multi-session listener).
race:
	$(GO) test -race ./internal/concurrent/ ./internal/core/ ./internal/walk/ ./internal/fabric/tcpgob/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/bingobench -exp concurrent -scale 0.002 -json BENCH_concurrent.json

# Tiny-scale pass over the JSON-emitting serving scenarios — the CI smoke
# step. Verifies the runners execute end to end and the BENCH_*.json
# reports appear; absolute numbers at this scale are meaningless.
bench-smoke:
	$(GO) run ./cmd/bingobench -exp concurrent,sharded,rebalance -datasets AM -scale 0.002 -walkers 500 -workers 2 \
		-json BENCH_concurrent.json -json-sharded BENCH_sharded.json -json-rebalance BENCH_rebalance.json
	test -s BENCH_concurrent.json && test -s BENCH_sharded.json && test -s BENCH_rebalance.json

# Multi-process serving smoke: spawns shard daemons (real bingowalk
# -shard-serve processes) on loopback, drives queries plus a
# growth-inducing feed through the ServeRemote coordinator, and checks a
# ≥1e5-draw chi-square over the served distribution plus edge-for-edge
# equality against a sequential replay.
distserve-smoke:
	$(GO) test -run TestDistServeLoopbackDifferential -count 1 -v .

# Short local fuzz session against the sampler's structural invariants.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSamplerMutate -fuzztime 30s ./internal/core/

clean:
	rm -f BENCH_concurrent.json BENCH_sharded.json BENCH_rebalance.json
