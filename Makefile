GO ?= go

.PHONY: all build vet test race bench fuzz clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the walk-while-ingest
# engine, the core sampler it wraps, and the live service.
race:
	$(GO) test -race ./internal/concurrent/ ./internal/core/ ./internal/walk/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/bingobench -exp concurrent -scale 0.002 -json BENCH_concurrent.json

# Short local fuzz session against the sampler's structural invariants.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSamplerMutate -fuzztime 30s ./internal/core/

clean:
	rm -f BENCH_concurrent.json
