GO ?= go
STATICCHECK ?= staticcheck

.PHONY: all build vet lint test race bench bench-smoke distserve-smoke fault-smoke corpus-smoke coord-smoke obs-smoke fuzz clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Install the pinned tool with:
#   go install honnef.co/go/tools/cmd/staticcheck@2024.1.1
lint:
	$(STATICCHECK) ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-critical packages: the walk-while-ingest
# engine, the core sampler it wraps, the live service, and the wire
# fabric (batched senders + multi-session listener).
race:
	$(GO) test -race -timeout 20m ./internal/concurrent/ ./internal/core/ ./internal/walk/ ./internal/fabric/tcpgob/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/bingobench -exp concurrent -scale 0.002 -json BENCH_concurrent.json

# Tiny-scale pass over the JSON-emitting serving scenarios — the CI smoke
# step. Verifies the runners execute end to end and the BENCH_*.json
# reports appear; absolute numbers at this scale are meaningless.
bench-smoke:
	$(GO) run ./cmd/bingobench -exp concurrent,sharded,rebalance,backpressure,corpus,coordscale -datasets AM -scale 0.002 -walkers 500 -workers 2 \
		-kernel-modes sparse,dense,auto -procs 1,4 \
		-json BENCH_concurrent.json -json-sharded BENCH_sharded.json -json-rebalance BENCH_rebalance.json \
		-json-backpressure BENCH_backpressure.json -json-corpus BENCH_corpus.json -json-coordscale BENCH_coordscale.json
	test -s BENCH_concurrent.json && test -s BENCH_sharded.json && test -s BENCH_rebalance.json && test -s BENCH_backpressure.json && test -s BENCH_corpus.json && test -s BENCH_coordscale.json

# Multi-process serving smoke: spawns shard daemons (real bingowalk
# -shard-serve processes) on loopback, drives queries plus a
# growth-inducing feed through the ServeRemote coordinator, and checks a
# ≥1e5-draw chi-square over the served distribution plus edge-for-edge
# equality against a sequential replay.
distserve-smoke:
	$(GO) test -run TestDistServeLoopbackDifferential -count 1 -v .

# Fault-injection smoke: the failover differentials — the in-process
# chaos-fabric kill/restart (race-detected), the credit-window bound
# against a slow shard, the transport's dial/accept hardening
# regressions, and the real kill -9 of a shard daemon mid-tape with
# chi-square + edge-for-edge validation after the rejoin.
fault-smoke:
	$(GO) test -race -count 1 -run 'TestFailoverKillRestartDifferential|TestCreditWindowBoundsSlowShard' ./internal/walk/
	$(GO) test -race -count 1 -run 'TestDialFindsLateDaemon|TestAcceptLoopSurvivesGarbageClients' ./internal/fabric/tcpgob/
	$(GO) test -race -count 1 -timeout 20m -run TestFaultKillDaemonMidTape -v .

# Standing-corpus smoke: the chi-square differential of the maintained
# corpus against fresh walks on the final graph after an 8k hub-churn
# tape (in-process fabric AND loopback tcpgob), the inverted-index
# brute-force property, and the touch-queue coalescing/credit regression
# — all race-detected.
corpus-smoke:
	$(GO) test -race -count 1 -timeout 20m -run 'TestCorpusDifferential|TestCorpusIndexMatchesBruteForce|TestCorpusCoalescingCredit' -v ./internal/walk/

# Multi-coordinator smoke: the reader-tier differentials — two read-
# coordinators querying through a rebalance migration mid-tape
# (in-process fabric AND loopback tcpgob, chi-square + edge-for-edge),
# reader crash isolation, plan-epoch broadcast invalidation — plus the
# real-process variant: bingowalk -shard-serve daemons, a ServeRemote
# write session, and bingo.AttachReader readers over loopback.
coord-smoke:
	$(GO) test -race -count 1 -timeout 20m -run 'TestMultiCoord|TestReaderCrash|TestPlanEpochBroadcast' -v ./internal/walk/
	$(GO) test -race -count 1 -timeout 20m -run TestCoordScaleRealProcess -v .

# Observability smoke: real -shard-serve daemons each serving a
# -debug-addr plane, a ServeRemote write session with its own, one
# feed-and-query pass — then scrape /metrics, /statusz, and /eventz on
# every plane and assert the promised metric families, including the
# shard-labeled node tallies the coordinator aggregates over the fabric.
# The kernel overhead budget and journal-ordering tests ride along.
obs-smoke:
	$(GO) test -count 1 -run TestObsSmoke -v .
	$(GO) test -count 1 -run 'TestKernelObsOverheadBudget|TestJournalMigrationOrdering|TestJournalFailoverOrdering|TestMetricsScrapeUnderLoad' -v ./internal/walk/

# Short local fuzz session against the sampler's structural invariants.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSamplerMutate -fuzztime 30s ./internal/core/

clean:
	rm -f BENCH_concurrent.json BENCH_sharded.json BENCH_rebalance.json BENCH_backpressure.json BENCH_corpus.json BENCH_coordscale.json
