package bingo

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng, err := FromEdges([]Edge{
		{Src: 2, Dst: 1, Weight: 5},
		{Src: 2, Dst: 4, Weight: 4},
		{Src: 2, Dst: 5, Weight: 3},
		{Src: 0, Dst: 2, Weight: 1},
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestFromEdgesAndSample(t *testing.T) {
	eng := quickEngine(t)
	if eng.NumVertices() != 6 || eng.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", eng.NumVertices(), eng.NumEdges())
	}
	r := NewRand(1)
	counts := map[VertexID]int{}
	const draws = 120000
	for i := 0; i < draws; i++ {
		v, ok := eng.Sample(2, r)
		if !ok {
			t.Fatal("no sample")
		}
		counts[v]++
	}
	for dst, want := range map[VertexID]float64{1: 5.0 / 12, 4: 4.0 / 12, 5: 3.0 / 12} {
		got := float64(counts[dst]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(%d) = %v, want %v", dst, got, want)
		}
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicUpdates(t *testing.T) {
	eng := quickEngine(t)
	if err := eng.Insert(2, 3, 3); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(2, 1); err != nil {
		t.Fatal(err)
	}
	if eng.Degree(2) != 3 || eng.HasEdge(2, 1) || !eng.HasEdge(2, 3) {
		t.Error("updates not reflected")
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBatchAndStream(t *testing.T) {
	a := quickEngine(t)
	b := quickEngine(t)
	ups := []Update{
		Insert(2, 3, 3),
		Delete(2, 1),
		Insert(5, 0, 7),
		Delete(4, 4), // not live → NotFound via batch, skipped via stream
	}
	res, err := a.ApplyBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 1 || res.NotFound != 1 {
		t.Fatalf("batch result %+v", res)
	}
	if err := b.ApplyStream(ups); err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Errorf("batch %d edges vs stream %d", a.NumEdges(), b.NumEdges())
	}
	for _, e := range []*Engine{a, b} {
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicValidation(t *testing.T) {
	if _, err := FromEdges([]Edge{{Src: 0, Dst: 1, Weight: 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := FromEdges([]Edge{{Src: 0, Dst: 1, Weight: 0.5}}); err == nil {
		t.Error("sub-integer weight accepted in integer mode")
	}
	if _, err := FromEdges([]Edge{{Src: 0, Dst: 1, Weight: 0.5}}, WithFloatWeights(0)); err != nil {
		t.Errorf("float mode rejected fractional weight: %v", err)
	}
	if _, err := New(4, WithFloatWeights(-1)); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := New(4, WithRadixBits(99)); err == nil {
		t.Error("bad radix bits accepted")
	}
	if _, err := New(4, WithThresholds(5, 50)); err == nil {
		t.Error("inverted thresholds accepted")
	}
	eng := quickEngine(t)
	if _, err := eng.ApplyBatch([]Update{{Op: Op(9), Src: 0, Dst: 1}}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := eng.ApplyBatch([]Update{Insert(0, 1, -3)}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestPublicFloatWeights(t *testing.T) {
	eng, err := FromEdges([]Edge{
		{Src: 0, Dst: 1, Weight: 0.554},
		{Src: 0, Dst: 2, Weight: 0.726},
		{Src: 0, Dst: 3, Weight: 0.320},
	}, WithFloatWeights(0))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(2)
	counts := map[VertexID]int{}
	const draws = 150000
	for i := 0; i < draws; i++ {
		v, _ := eng.Sample(0, r)
		counts[v]++
	}
	total := 0.554 + 0.726 + 0.320
	for dst, w := range map[VertexID]float64{1: 0.554, 2: 0.726, 3: 0.320} {
		got := float64(counts[dst]) / draws
		if math.Abs(got-w/total) > 0.01 {
			t.Errorf("P(%d) = %v, want %v", dst, got, w/total)
		}
	}
}

func TestPublicWalks(t *testing.T) {
	eng, err := FromEdges([]Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1}, {Src: 2, Dst: 3, Weight: 2},
		{Src: 3, Dst: 0, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	dw := eng.DeepWalk(WalkOptions{Length: 10, Seed: 1, CountVisits: true})
	if dw.Walkers != 4 || dw.Steps == 0 {
		t.Errorf("DeepWalk result %+v", dw)
	}
	n2v := eng.Node2Vec(WalkOptions{Length: 10, Seed: 1})
	if n2v.Steps == 0 {
		t.Error("node2vec made no steps")
	}
	ppr := eng.PPR(WalkOptions{Seed: 1, CountVisits: true})
	if ppr.Steps == 0 || ppr.Visits == nil {
		t.Error("PPR result empty")
	}
	ss := eng.SimpleSampling(WalkOptions{Length: 50, Starts: []VertexID{2}, Seed: 1})
	if ss.Steps != 50 {
		t.Errorf("SimpleSampling steps %d", ss.Steps)
	}
}

func TestFromEdgeList(t *testing.T) {
	in := "# demo\n0 1 5\n0 2 4\n1 0\n"
	eng, err := FromEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumEdges() != 3 || eng.Degree(0) != 2 {
		t.Error("edge list parse wrong")
	}
	if _, err := FromEdgeList(strings.NewReader("garbage here x\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMemoryReported(t *testing.T) {
	eng := quickEngine(t)
	if eng.Memory() <= 0 {
		t.Error("Memory() not positive")
	}
}

func TestEngineGrowth(t *testing.T) {
	eng, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Insert(10, 20, 5); err != nil {
		t.Fatal(err)
	}
	if eng.NumVertices() < 21 || !eng.HasEdge(10, 20) {
		t.Error("vertex growth failed")
	}
}

func TestStatsSnapshotRoundTrip(t *testing.T) {
	eng := quickEngine(t)
	st := eng.Stats()
	if st.Vertices != 6 || st.Edges != 4 || st.Memory <= 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.DenseGroups+st.OneElementGroups+st.SparseGroups+st.RegularGroups == 0 {
		t.Error("no groups reported")
	}
	if st.Lambda != 0 {
		t.Error("integer engine reports lambda")
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != eng.NumEdges() {
		t.Errorf("snapshot round trip: %d vs %d edges", back.NumEdges(), eng.NumEdges())
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
